"""Multi-dimensional buffers and buffer regions.

A :class:`Buffer` is a named multi-dimensional array with a dtype and a
storage *scope* (``global``, ``shared``, ``local`` / register,
``wmma.matrix_a`` and friends for tensor-core fragments).  Buffers are
identity objects: two buffers with the same name are different buffers.

A :class:`BufferRegion` is a buffer plus a list of :class:`Range` — the
unit of the block-signature read/write sets described in §3.1 of the
paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from . import dtype as _dt
from .expr import BufferLoad, ExprLike, PrimExpr, Range, as_expr, const_int_value

__all__ = ["Buffer", "BufferRegion", "decl_buffer", "MemoryScope"]


class MemoryScope:
    """Canonical storage scope names used throughout the system."""

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"
    WMMA_A = "wmma.matrix_a"
    WMMA_B = "wmma.matrix_b"
    WMMA_ACC = "wmma.accumulator"

    ALL = (GLOBAL, SHARED, LOCAL, WMMA_A, WMMA_B, WMMA_ACC)

    #: Scopes that live inside a streaming-multiprocessor and are shared
    #: across the threads of one thread block.
    BLOCK_LOCAL = (SHARED,)
    #: Scopes private to a single thread (or warp for wmma fragments).
    THREAD_LOCAL = (LOCAL, WMMA_A, WMMA_B, WMMA_ACC)


class Buffer:
    """A multi-dimensional array in some memory scope."""

    # ``_memo_hash`` backs the per-node structural-hash memo (see
    # :mod:`repro.tir.structural`): left unset until first hashed.
    __slots__ = ("name", "shape", "dtype", "scope", "_memo_hash")

    def __init__(
        self,
        name: str,
        shape: Sequence[ExprLike],
        dtype: str = "float32",
        scope: str = MemoryScope.GLOBAL,
    ):
        self.name = name
        self.shape: Tuple[PrimExpr, ...] = tuple(as_expr(s) for s in shape)
        self.dtype = _dt.validate_dtype(dtype)
        self.scope = scope

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def shape_ints(self) -> Tuple[int, ...]:
        """Constant shape as Python ints; raises if any extent is symbolic."""
        out = []
        for s in self.shape:
            v = const_int_value(s)
            if v is None:
                raise ValueError(f"buffer {self.name} has symbolic shape")
            out.append(v)
        return tuple(out)

    def numel(self) -> int:
        n = 1
        for s in self.shape_ints():
            n *= s
        return n

    def nbytes(self) -> int:
        return self.numel() * _dt.bytes_of(self.dtype)

    def __getitem__(self, indices) -> BufferLoad:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return BufferLoad(self, indices)

    def full_region(self) -> "BufferRegion":
        """The region covering the entire buffer."""
        return BufferRegion(self, [Range(0, s) for s in self.shape])

    def with_scope(self, scope: str, name: Optional[str] = None) -> "Buffer":
        """A *new* buffer with the same shape/dtype in another scope."""
        return Buffer(name or f"{self.name}_{scope.replace('.', '_')}", self.shape, self.dtype, scope)

    def __repr__(self) -> str:  # pragma: no cover
        shape = ", ".join(str(const_int_value(s)) for s in self.shape)
        return f"Buffer({self.name}: {self.dtype}[{shape}] @{self.scope})"


class BufferRegion:
    """A rectangular sub-region of a buffer: ``buf[min0:min0+ext0, ...]``."""

    __slots__ = ("buffer", "region")

    def __init__(self, buffer: Buffer, region: Sequence[Range]):
        if len(region) != buffer.ndim:
            raise ValueError(
                f"region rank {len(region)} does not match buffer "
                f"{buffer.name} rank {buffer.ndim}"
            )
        self.buffer = buffer
        self.region: Tuple[Range, ...] = tuple(region)

    @staticmethod
    def from_point(buffer: Buffer, indices: Sequence[ExprLike]) -> "BufferRegion":
        """The single-element region at ``indices``."""
        return BufferRegion(buffer, [Range(as_expr(i), 1) for i in indices])

    def is_full(self) -> bool:
        """True if this region statically covers the whole buffer."""
        for rng, extent in zip(self.region, self.buffer.shape):
            if const_int_value(rng.min) != 0:
                return False
            if const_int_value(rng.extent) != const_int_value(extent):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover
        from .printer import expr_str

        dims = ", ".join(
            f"{expr_str(r.min)}:{expr_str(r.min)}+{expr_str(r.extent)}" for r in self.region
        )
        return f"{self.buffer.name}[{dims}]"


def decl_buffer(
    shape: Sequence[ExprLike],
    dtype: str = "float32",
    name: str = "buffer",
    scope: str = MemoryScope.GLOBAL,
) -> Buffer:
    """Declare a buffer (convenience constructor mirroring TVM's API)."""
    return Buffer(name, shape, dtype, scope)
