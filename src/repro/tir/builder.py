"""Imperative IR builder — the Python dialect used to construct TensorIR.

This is the construction side of the paper's "Python-AST dialect"
(Figure 4): programs are built with nested ``with`` contexts mirroring
the script's structure.  Read/write regions of blocks are detected
automatically from the body (and can be overridden), so user code looks
like::

    b = IRBuilder("fuse_add_exp")
    A = b.arg_buffer("A", (64, 64), "float32")
    C = b.arg_buffer("C", (64, 64), "float32")
    B = b.alloc_buffer("B", (64, 64), "float32")
    with b.grid(64, 64) as (i, j):
        with b.block("B") as blk:
            vi = blk.spatial(64, i)
            vj = blk.spatial(64, j)
            b.store(B, (vi, vj), A[vi, vj] + 1.0)
    with b.grid(64, 64) as (i, j):
        with b.block("C") as blk:
            vi = blk.spatial(64, i)
            vj = blk.spatial(64, j)
            b.store(C, (vi, vj), call("exp", B[vi, vj]))
    func = b.finish()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..arith import Analyzer
from . import dtype as _dt
from .buffer import Buffer, BufferRegion, MemoryScope
from .expr import Call, ExprLike, IterVar, PrimExpr, Range, Var, as_expr, const
from .function import PrimFunc, make_root_block
from .stmt import (
    Block,
    BlockRealize,
    BufferStore,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    LetStmt,
    Stmt,
    seq,
)

__all__ = ["IRBuilder", "BlockBuilder", "call"]


def call(op: str, *args, dtype: str = "float32") -> Call:
    """Build an intrinsic call expression, e.g. ``call("exp", x)``.

    String arguments become :class:`~repro.tir.expr.StringImm` (used by
    intrinsics like ``min_value("float16")``).
    """
    from .expr import StringImm

    converted = [StringImm(a) if isinstance(a, str) else as_expr(a) for a in args]
    return Call(dtype, op, converted)


class _Frame:
    """A statement-collection frame; one per open ``with`` context."""

    def __init__(self, kind: str):
        self.kind = kind
        self.stmts: List[Stmt] = []
        self.alloc_buffers: List[Buffer] = []


class BlockBuilder:
    """Collects one block's iterators, bindings and body."""

    def __init__(self, builder: "IRBuilder", name: str):
        self._builder = builder
        self.name = name
        self.iter_vars: List[IterVar] = []
        self.iter_values: List[PrimExpr] = []
        self._reads: Optional[List[BufferRegion]] = None
        self._writes: Optional[List[BufferRegion]] = None
        self._init_stmt: Optional[Stmt] = None
        self.predicate: PrimExpr = const(True)
        self.annotations: Dict[str, object] = {}

    # -- iterator declaration -------------------------------------------
    def _axis(self, kind: str, extent: ExprLike, binding: ExprLike, name: Optional[str]) -> Var:
        if name is None:
            bound = as_expr(binding)
            name = f"v{bound.name}" if isinstance(bound, Var) else f"v{len(self.iter_vars)}"
        var = Var(name, "int32")
        self.iter_vars.append(IterVar(var, Range(0, extent), kind))
        self.iter_values.append(as_expr(binding))
        return var

    def spatial(self, extent: ExprLike, binding: ExprLike, name: Optional[str] = None) -> Var:
        """Declare a spatial (data-parallel) block iterator."""
        return self._axis(IterVar.SPATIAL, extent, binding, name)

    def reduce(self, extent: ExprLike, binding: ExprLike, name: Optional[str] = None) -> Var:
        """Declare a reduction block iterator."""
        return self._axis(IterVar.REDUCE, extent, binding, name)

    # -- signature overrides -----------------------------------------------
    def reads(self, *regions) -> None:
        self._reads = [self._as_region(r) for r in regions]

    def writes(self, *regions) -> None:
        self._writes = [self._as_region(r) for r in regions]

    def where(self, predicate: ExprLike) -> None:
        """Guard the block instance with a predicate."""
        self.predicate = as_expr(predicate)

    def annotate(self, key: str, value: object) -> None:
        self.annotations[key] = value

    @staticmethod
    def _as_region(r) -> BufferRegion:
        from .expr import BufferLoad

        if isinstance(r, BufferRegion):
            return r
        if isinstance(r, BufferLoad):
            return BufferRegion.from_point(r.buffer, r.indices)
        if isinstance(r, Buffer):
            return r.full_region()
        raise TypeError(f"cannot interpret {type(r).__name__} as a region")

    @contextmanager
    def init(self):
        """Open the reduction-initialisation context."""
        frame = _Frame("init")
        self._builder._frames.append(frame)
        try:
            yield
        finally:
            self._builder._frames.pop()
        if frame.alloc_buffers:
            raise ValueError("allocations are not allowed inside init")
        self._init_stmt = seq(frame.stmts)

    # -- finalisation ------------------------------------------------------
    def build(self, frame: _Frame) -> BlockRealize:
        body = seq(frame.stmts)
        block = Block(
            name_hint=self.name,
            iter_vars=self.iter_vars,
            reads=(),
            writes=(),
            body=body,
            init=self._init_stmt,
            alloc_buffers=frame.alloc_buffers,
            annotations=self.annotations,
        )
        if self._reads is None or self._writes is None:
            from .analysis.regions import detect_block_access_regions

            reads, writes = detect_block_access_regions(block)
            block = block.replace(
                reads=self._reads if self._reads is not None else reads,
                writes=self._writes if self._writes is not None else writes,
            )
        else:
            block = block.replace(reads=self._reads, writes=self._writes)
        return BlockRealize(self.iter_values, self.predicate, block)


class IRBuilder:
    """Builds one :class:`~repro.tir.function.PrimFunc` imperatively."""

    def __init__(self, name: str = "main"):
        self.name = name
        self._params: List[Var] = []
        self._buffer_map: Dict[Var, Buffer] = {}
        self._frames: List[_Frame] = [_Frame("root")]
        self._name_counts: Dict[str, int] = {}

    # -- declarations --------------------------------------------------
    def arg_buffer(
        self,
        name: str,
        shape: Sequence[ExprLike],
        dtype: str = "float32",
        scope: str = MemoryScope.GLOBAL,
    ) -> Buffer:
        """Declare a parameter buffer."""
        buf = Buffer(name, shape, dtype, scope)
        handle = Var(name, "handle")
        self._params.append(handle)
        self._buffer_map[handle] = buf
        return buf

    def alloc_buffer(
        self,
        name: str,
        shape: Sequence[ExprLike],
        dtype: str = "float32",
        scope: str = MemoryScope.GLOBAL,
    ) -> Buffer:
        """Allocate an intermediate buffer in the current block scope."""
        buf = Buffer(name, shape, dtype, scope)
        self._frames[0 if len(self._frames) == 1 else -1].alloc_buffers.append(buf)
        return buf

    def fresh_name(self, hint: str) -> str:
        count = self._name_counts.get(hint, 0)
        self._name_counts[hint] = count + 1
        return hint if count == 0 else f"{hint}_{count}"

    # -- statements --------------------------------------------------------
    def emit(self, stmt: Stmt) -> None:
        self._frames[-1].stmts.append(stmt)

    def store(self, buffer: Buffer, indices: Sequence[ExprLike], value: ExprLike) -> None:
        self.emit(BufferStore(buffer, value, indices))

    def evaluate(self, expr: ExprLike) -> None:
        self.emit(Evaluate(expr))

    # -- loops ------------------------------------------------------------
    @contextmanager
    def _loop(self, extent: ExprLike, kind: str, name: str, thread: Optional[str] = None):
        var = Var(self.fresh_name(name), "int32")
        frame = _Frame("loop")
        self._frames.append(frame)
        try:
            yield var
        finally:
            self._frames.pop()
        body = seq(frame.stmts)
        if frame.alloc_buffers:
            raise ValueError("use blocks (not loops) to scope allocations")
        self.emit(For(var, 0, extent, kind, body, thread_tag=thread))

    def serial(self, extent: ExprLike, name: str = "i"):
        return self._loop(extent, ForKind.SERIAL, name)

    def parallel(self, extent: ExprLike, name: str = "i"):
        return self._loop(extent, ForKind.PARALLEL, name)

    def vectorized(self, extent: ExprLike, name: str = "i"):
        return self._loop(extent, ForKind.VECTORIZED, name)

    def unrolled(self, extent: ExprLike, name: str = "i"):
        return self._loop(extent, ForKind.UNROLLED, name)

    def thread_binding(self, extent: ExprLike, thread: str, name: Optional[str] = None):
        return self._loop(
            extent, ForKind.THREAD_BINDING, name or thread.replace(".", "_"), thread
        )

    @contextmanager
    def grid(self, *extents: ExprLike, names: Optional[Sequence[str]] = None):
        """Open a perfectly nested grid of serial loops."""
        default_names = ["i", "j", "k", "l", "m", "n"]
        if names is None:
            names = [
                default_names[idx] if idx < len(default_names) else f"i{idx}"
                for idx in range(len(extents))
            ]
        vars_: List[Var] = [Var(self.fresh_name(n), "int32") for n in names]
        frame = _Frame("grid")
        self._frames.append(frame)
        try:
            yield tuple(vars_) if len(vars_) > 1 else vars_[0]
        finally:
            self._frames.pop()
        if frame.alloc_buffers:
            raise ValueError("use blocks (not loops) to scope allocations")
        body = seq(frame.stmts)
        for var, extent in zip(reversed(vars_), reversed(extents)):
            body = For(var, 0, extent, ForKind.SERIAL, body)
        self.emit(body)

    @contextmanager
    def if_then(self, condition: ExprLike):
        frame = _Frame("if")
        self._frames.append(frame)
        try:
            yield
        finally:
            self._frames.pop()
        self.emit(IfThenElse(condition, seq(frame.stmts)))

    @contextmanager
    def let(self, name: str, value: ExprLike):
        value = as_expr(value)
        var = Var(self.fresh_name(name), value.dtype)
        frame = _Frame("let")
        self._frames.append(frame)
        try:
            yield var
        finally:
            self._frames.pop()
        self.emit(LetStmt(var, value, seq(frame.stmts)))

    # -- blocks -----------------------------------------------------------
    @contextmanager
    def block(self, name: str):
        block_builder = BlockBuilder(self, self.fresh_name(name))
        frame = _Frame("block")
        self._frames.append(frame)
        try:
            yield block_builder
        finally:
            self._frames.pop()
        self.emit(block_builder.build(frame))

    # -- finalisation -----------------------------------------------------
    def finish(self) -> PrimFunc:
        if len(self._frames) != 1:
            raise RuntimeError("unclosed builder context")
        root = self._frames[0]
        body = make_root_block(seq(root.stmts), alloc_buffers=root.alloc_buffers)
        return PrimFunc(self._params, self._buffer_map, body, name=self.name)
