"""Data type utilities for TensorIR.

Data types are plain strings such as ``"float32"``, ``"float16"``,
``"int32"``, ``"int8"``, ``"uint8"``, ``"bool"`` and ``"handle"``.  This
module centralises parsing, classification and promotion rules so the rest
of the IR never string-matches ad hoc.
"""

from __future__ import annotations

import re

__all__ = [
    "DTYPE_BITS",
    "is_float",
    "is_int",
    "is_uint",
    "is_bool",
    "is_handle",
    "bits_of",
    "validate_dtype",
    "promote",
    "numpy_dtype",
]

_DTYPE_RE = re.compile(r"^(float|int|uint|bool|handle)(\d*)$")

DTYPE_BITS = {
    "float64": 64,
    "float32": 32,
    "float16": 16,
    "int64": 64,
    "int32": 32,
    "int16": 16,
    "int8": 8,
    "uint64": 64,
    "uint32": 32,
    "uint16": 16,
    "uint8": 8,
    "bool": 1,
    "handle": 64,
}


def validate_dtype(dtype: str) -> str:
    """Return ``dtype`` if it is a known TensorIR data type, else raise."""
    if dtype not in DTYPE_BITS:
        raise ValueError(f"unknown dtype: {dtype!r}")
    return dtype


def is_float(dtype: str) -> bool:
    return dtype.startswith("float")


def is_int(dtype: str) -> bool:
    return dtype.startswith("int") or dtype.startswith("uint")


def is_uint(dtype: str) -> bool:
    return dtype.startswith("uint")


def is_bool(dtype: str) -> bool:
    return dtype == "bool"


def is_handle(dtype: str) -> bool:
    return dtype == "handle"


def bits_of(dtype: str) -> int:
    """Number of bits in one element of ``dtype``."""
    return DTYPE_BITS[validate_dtype(dtype)]


def bytes_of(dtype: str) -> int:
    """Number of bytes in one element of ``dtype`` (bool counts as 1)."""
    return max(1, bits_of(dtype) // 8)


def promote(lhs: str, rhs: str) -> str:
    """Result dtype of a binary arithmetic operation.

    Follows conventional promotion: float beats int, wider beats narrower,
    and bool promotes to ``int32`` when mixed with integers.
    """
    validate_dtype(lhs)
    validate_dtype(rhs)
    if lhs == rhs:
        return lhs
    if is_handle(lhs) or is_handle(rhs):
        raise TypeError("cannot promote handle dtype")
    if is_bool(lhs):
        return rhs
    if is_bool(rhs):
        return lhs
    lf, rf = is_float(lhs), is_float(rhs)
    if lf and not rf:
        return lhs
    if rf and not lf:
        return rhs
    # Same family: pick the wider; ties between int/uint pick signed.
    lb, rb = bits_of(lhs), bits_of(rhs)
    if lb > rb:
        return lhs
    if rb > lb:
        return rhs
    return lhs if not is_uint(lhs) else rhs


def numpy_dtype(dtype: str):
    """Map a TensorIR dtype string to the corresponding NumPy dtype."""
    import numpy as np

    validate_dtype(dtype)
    if dtype == "bool":
        return np.bool_
    if dtype == "handle":
        return np.uint64
    return np.dtype(dtype)
