"""Concrete evaluation of scalar expressions.

Used by tests (property-based checks of the simplifier and of schedule
semantics preservation) and by the reference interpreter.  Buffers are
backed by NumPy arrays supplied through ``buffer_env``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional

from . import dtype as _dt
from .buffer import Buffer
from .expr import (
    Add,
    And,
    BufferLoad,
    Call,
    Cast,
    Div,
    EQ,
    FloatImm,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    PrimExpr,
    Select,
    StringImm,
    Sub,
    TruncDiv,
    Var,
)

__all__ = ["evaluate_expr", "INTRINSIC_IMPLS"]


def _fdiv(a, b):
    return a // b


def _fmod(a, b):
    return a - (a // b) * b


_BINOPS = {
    Add: lambda a, b: a + b,
    Sub: lambda a, b: a - b,
    Mul: lambda a, b: a * b,
    Div: lambda a, b: a / b,
    FloorDiv: _fdiv,
    FloorMod: _fmod,
    TruncDiv: lambda a, b: int(a / b) if b else 0,
    Min: min,
    Max: max,
    EQ: lambda a, b: a == b,
    NE: lambda a, b: a != b,
    LT: lambda a, b: a < b,
    LE: lambda a, b: a <= b,
    GT: lambda a, b: a > b,
    GE: lambda a, b: a >= b,
    And: lambda a, b: bool(a) and bool(b),
    Or: lambda a, b: bool(a) or bool(b),
}

#: Scalar implementations of named intrinsics usable inside expressions.
INTRINSIC_IMPLS: Dict[str, Callable] = {
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "tanh": math.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
    "erf": math.erf,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "pow": math.pow,
    "max_value": lambda dtype: float("inf") if _dt.is_float(dtype) else (2 ** (_dt.bits_of(dtype) - 1) - 1),
    "min_value": lambda dtype: float("-inf") if _dt.is_float(dtype) else -(2 ** (_dt.bits_of(dtype) - 1)),
}


def _cast_value(value, dtype: str):
    if _dt.is_float(dtype):
        import numpy as np

        return float(np.dtype(dtype).type(value))
    if _dt.is_bool(dtype):
        return bool(value)
    bits = _dt.bits_of(dtype)
    v = int(value)
    if _dt.is_uint(dtype):
        return v % (1 << bits)
    half = 1 << (bits - 1)
    return (v + half) % (1 << bits) - half


def evaluate_expr(
    expr: PrimExpr,
    env: Mapping[Var, object],
    buffer_env: Optional[Mapping[Buffer, object]] = None,
):
    """Evaluate ``expr`` with variables bound by ``env``.

    ``buffer_env`` maps :class:`Buffer` to NumPy arrays for
    :class:`BufferLoad` nodes.  Raises ``KeyError`` on unbound vars.
    """
    if isinstance(expr, Var):
        return env[expr]
    if isinstance(expr, IntImm):
        return bool(expr.value) if expr.dtype == "bool" else expr.value
    if isinstance(expr, FloatImm):
        return expr.value
    if isinstance(expr, StringImm):
        return expr.value
    if isinstance(expr, Cast):
        return _cast_value(evaluate_expr(expr.value, env, buffer_env), expr.dtype)
    if isinstance(expr, Not):
        return not evaluate_expr(expr.a, env, buffer_env)
    if isinstance(expr, Select):
        if evaluate_expr(expr.condition, env, buffer_env):
            return evaluate_expr(expr.true_value, env, buffer_env)
        return evaluate_expr(expr.false_value, env, buffer_env)
    if isinstance(expr, BufferLoad):
        if buffer_env is None:
            raise KeyError(f"no buffer environment for load of {expr.buffer.name}")
        array = buffer_env[expr.buffer]
        idx = tuple(int(evaluate_expr(i, env, buffer_env)) for i in expr.indices)
        return array[idx].item() if hasattr(array[idx], "item") else array[idx]
    if isinstance(expr, Call):
        impl = INTRINSIC_IMPLS.get(expr.op)
        if impl is None:
            raise KeyError(f"no scalar implementation for intrinsic {expr.op!r}")
        args = [evaluate_expr(a, env, buffer_env) for a in expr.args]
        return impl(*args)
    fn = _BINOPS.get(type(expr))
    if fn is not None:
        a = evaluate_expr(expr.a, env, buffer_env)
        b = evaluate_expr(expr.b, env, buffer_env)
        return fn(a, b)
    raise TypeError(f"cannot evaluate: {type(expr).__name__}")
