"""Scalar expression IR for TensorIR.

Expression nodes are immutable.  Identity (``is``) matters for variables —
two :class:`Var` objects with the same name are *different* variables —
so all nodes use identity-based ``__eq__``/``__hash__`` and structural
comparison lives in :mod:`repro.tir.structural`.

Python operators are overloaded on :class:`PrimExpr` so IR construction
reads like arithmetic: ``A[vi, vk] * B[vk, vj]``.  Overloads perform light
constant folding (e.g. ``x + 0`` stays ``x + 0`` but ``2 + 3`` folds) to
keep the builders fast; full simplification lives in :mod:`repro.arith`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from . import dtype as _dt

__all__ = [
    "PrimExpr",
    "Var",
    "IntImm",
    "FloatImm",
    "StringImm",
    "Cast",
    "BinaryOp",
    "Add",
    "Sub",
    "Mul",
    "FloorDiv",
    "FloorMod",
    "TruncDiv",
    "Min",
    "Max",
    "CmpOp",
    "EQ",
    "NE",
    "LT",
    "LE",
    "GT",
    "GE",
    "And",
    "Or",
    "Not",
    "Select",
    "BufferLoad",
    "Call",
    "Range",
    "IterVar",
    "const",
    "as_expr",
    "is_const_int",
    "const_int_value",
    "ExprLike",
]

ExprLike = Union["PrimExpr", int, float, bool]


class PrimExpr:
    """Base class for all scalar expressions.

    Every expression carries a ``dtype`` string (see
    :mod:`repro.tir.dtype`).
    """

    # ``_memo_hash`` backs the per-node structural-hash memo (see
    # :mod:`repro.tir.structural`): left unset until first hashed.
    __slots__ = ("dtype", "_memo_hash")

    def __init__(self, dtype: str):
        self.dtype = _dt.validate_dtype(dtype)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(Add, self, other)

    def __radd__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(Add, other, self)

    def __sub__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(Sub, self, other)

    def __rsub__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(Sub, other, self)

    def __mul__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(Mul, self, other)

    def __rmul__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(Mul, other, self)

    def __floordiv__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(FloorDiv, self, other)

    def __rfloordiv__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(FloorDiv, other, self)

    def __mod__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(FloorMod, self, other)

    def __rmod__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(FloorMod, other, self)

    def __truediv__(self, other: ExprLike) -> "PrimExpr":
        if _dt.is_int(self.dtype):
            raise TypeError("use // for integer division in TensorIR")
        return _make_binary(Div, self, other)

    def __rtruediv__(self, other: ExprLike) -> "PrimExpr":
        if _dt.is_int(self.dtype):
            raise TypeError("use // for integer division in TensorIR")
        return _make_binary(Div, other, self)

    def __neg__(self) -> "PrimExpr":
        return _make_binary(Sub, const(0, self.dtype), self)

    # -- comparisons (note: `==` is identity; use .equal / EQ node) ----
    def equal(self, other: ExprLike) -> "PrimExpr":
        """Build an elementwise equality expression (``==`` is identity)."""
        return _make_binary(EQ, self, other, out_dtype="bool")

    def not_equal(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(NE, self, other, out_dtype="bool")

    def __lt__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(LT, self, other, out_dtype="bool")

    def __le__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(LE, self, other, out_dtype="bool")

    def __gt__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(GT, self, other, out_dtype="bool")

    def __ge__(self, other: ExprLike) -> "PrimExpr":
        return _make_binary(GE, self, other, out_dtype="bool")

    def astype(self, dtype: str) -> "PrimExpr":
        """Cast this expression to ``dtype`` (no-op if already there)."""
        if dtype == self.dtype:
            return self
        return Cast(dtype, self)

    # -- misc ----------------------------------------------------------
    def __bool__(self) -> bool:
        raise TypeError(
            "PrimExpr cannot be used as a Python bool; build IR with "
            "Select/And/Or or evaluate the expression explicitly"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import expr_str

        return f"{type(self).__name__}({expr_str(self)})"


class Var(PrimExpr):
    """A named scalar variable.  Identity defines the variable."""

    __slots__ = ("name",)

    def __init__(self, name: str, dtype: str = "int32"):
        super().__init__(dtype)
        self.name = name

    def with_name(self, name: str) -> "Var":
        """A *new* variable with the same dtype but a different name."""
        return Var(name, self.dtype)


class IntImm(PrimExpr):
    """Integer (or boolean) immediate."""

    __slots__ = ("value",)

    def __init__(self, value: int, dtype: str = "int32"):
        super().__init__(dtype)
        if not (_dt.is_int(dtype) or _dt.is_bool(dtype)):
            raise TypeError(f"IntImm dtype must be integral, got {dtype}")
        self.value = int(value)


class FloatImm(PrimExpr):
    """Floating point immediate."""

    __slots__ = ("value",)

    def __init__(self, value: float, dtype: str = "float32"):
        super().__init__(dtype)
        if not _dt.is_float(dtype):
            raise TypeError(f"FloatImm dtype must be float, got {dtype}")
        self.value = float(value)


class StringImm(PrimExpr):
    """String immediate — used for annotations and intrinsic arguments."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__("handle")
        self.value = value


class Cast(PrimExpr):
    """Type conversion ``dtype(value)``."""

    __slots__ = ("value",)

    def __init__(self, dtype: str, value: PrimExpr):
        super().__init__(dtype)
        self.value = as_expr(value)


class BinaryOp(PrimExpr):
    """Base for binary expressions; subclasses define ``op_name``."""

    __slots__ = ("a", "b")
    op_name = "?"

    def __init__(self, a: PrimExpr, b: PrimExpr, dtype: Optional[str] = None):
        a, b = as_expr(a), as_expr(b)
        super().__init__(dtype or _dt.promote(a.dtype, b.dtype))
        self.a = a
        self.b = b


class Add(BinaryOp):
    op_name = "+"


class Sub(BinaryOp):
    op_name = "-"


class Mul(BinaryOp):
    op_name = "*"


class Div(BinaryOp):
    """True (floating point) division."""

    op_name = "/"


class FloorDiv(BinaryOp):
    op_name = "//"


class FloorMod(BinaryOp):
    op_name = "%"


class TruncDiv(BinaryOp):
    op_name = "/t/"


class Min(BinaryOp):
    op_name = "min"


class Max(BinaryOp):
    op_name = "max"


class CmpOp(BinaryOp):
    """Base for comparisons: result dtype is always bool."""

    def __init__(self, a: PrimExpr, b: PrimExpr, dtype: Optional[str] = None):
        super().__init__(a, b, dtype="bool")


class EQ(CmpOp):
    op_name = "=="


class NE(CmpOp):
    op_name = "!="


class LT(CmpOp):
    op_name = "<"


class LE(CmpOp):
    op_name = "<="


class GT(CmpOp):
    op_name = ">"


class GE(CmpOp):
    op_name = ">="


class And(CmpOp):
    op_name = "and"


class Or(CmpOp):
    op_name = "or"


class Not(PrimExpr):
    __slots__ = ("a",)

    def __init__(self, a: PrimExpr):
        super().__init__("bool")
        self.a = as_expr(a)


class Select(PrimExpr):
    """``true_value if condition else false_value`` (both sides evaluated)."""

    __slots__ = ("condition", "true_value", "false_value")

    def __init__(self, condition: PrimExpr, true_value: ExprLike, false_value: ExprLike):
        true_value = as_expr(true_value)
        false_value = as_expr(false_value)
        super().__init__(_dt.promote(true_value.dtype, false_value.dtype))
        self.condition = as_expr(condition)
        self.true_value = true_value
        self.false_value = false_value


class BufferLoad(PrimExpr):
    """Read one element of a multi-dimensional buffer: ``buf[i0, i1, ...]``."""

    __slots__ = ("buffer", "indices")

    def __init__(self, buffer, indices: Sequence[ExprLike]):
        super().__init__(buffer.dtype)
        self.buffer = buffer
        self.indices: Tuple[PrimExpr, ...] = tuple(as_expr(i) for i in indices)
        if len(self.indices) != buffer.ndim:
            raise ValueError(
                f"BufferLoad of {buffer.name}: got {len(self.indices)} indices "
                f"for a {buffer.ndim}-d buffer"
            )


class Call(PrimExpr):
    """Call to a named builtin/intrinsic, e.g. ``exp``, ``sqrt``, ``accel.dot``."""

    __slots__ = ("op", "args")

    def __init__(self, dtype: str, op: str, args: Sequence[ExprLike]):
        super().__init__(dtype)
        self.op = op
        self.args: Tuple[PrimExpr, ...] = tuple(
            a if isinstance(a, PrimExpr) else as_expr(a) for a in args
        )


class Range:
    """A half-open integer range ``[min, min + extent)``."""

    __slots__ = ("min", "extent")

    def __init__(self, min: ExprLike, extent: ExprLike):  # noqa: A002 - IR name
        self.min = as_expr(min)
        self.extent = as_expr(extent)

    @staticmethod
    def from_extent(extent: ExprLike) -> "Range":
        return Range(0, extent)

    def __repr__(self) -> str:  # pragma: no cover
        from .printer import expr_str

        return f"Range({expr_str(self.min)}, {expr_str(self.extent)})"


class IterVar:
    """A block iterator variable: ``var`` ranging over ``dom`` with a kind.

    Kinds follow the paper: ``spatial`` (data parallel), ``reduce``
    (reduction), and ``thread`` (bound to a hardware thread axis, used by
    lowered loop nests).
    """

    SPATIAL = "spatial"
    REDUCE = "reduce"
    THREAD = "thread"
    OPAQUE = "opaque"

    KINDS = (SPATIAL, REDUCE, THREAD, OPAQUE)

    __slots__ = ("var", "dom", "kind")

    def __init__(self, var: Var, dom: Range, kind: str):
        if kind not in self.KINDS:
            raise ValueError(f"unknown IterVar kind: {kind}")
        self.var = var
        self.dom = dom
        self.kind = kind

    @property
    def is_reduce(self) -> bool:
        return self.kind == self.REDUCE

    @property
    def is_spatial(self) -> bool:
        return self.kind == self.SPATIAL

    def __repr__(self) -> str:  # pragma: no cover
        from .printer import expr_str

        return (
            f"IterVar({self.var.name}: {self.kind}"
            f"[{expr_str(self.dom.min)}, {expr_str(self.dom.extent)}))"
        )


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def const(value: Union[int, float, bool], dtype: Optional[str] = None) -> PrimExpr:
    """Build an immediate from a Python value."""
    if isinstance(value, bool):
        return IntImm(int(value), dtype or "bool")
    if isinstance(value, int):
        if dtype is not None and _dt.is_float(dtype):
            return FloatImm(float(value), dtype)
        return IntImm(value, dtype or "int32")
    if isinstance(value, float):
        if dtype is not None and _dt.is_int(dtype):
            if not value.is_integer():
                raise TypeError(f"cannot make int const from {value}")
            return IntImm(int(value), dtype)
        return FloatImm(value, dtype or "float32")
    raise TypeError(f"cannot make const from {type(value).__name__}")


def as_expr(value: ExprLike, dtype: Optional[str] = None) -> PrimExpr:
    """Coerce a Python value or expression into a :class:`PrimExpr`."""
    if isinstance(value, PrimExpr):
        return value
    return const(value, dtype)


def is_const_int(expr: ExprLike, value: Optional[int] = None) -> bool:
    """True if ``expr`` is an integer immediate (optionally equal to ``value``)."""
    if isinstance(expr, int) and not isinstance(expr, bool):
        return value is None or expr == value
    if isinstance(expr, IntImm):
        return value is None or expr.value == value
    return False


def const_int_value(expr: ExprLike) -> Optional[int]:
    """The Python int behind ``expr`` if it is an integer immediate, else None."""
    if isinstance(expr, bool):
        return int(expr)
    if isinstance(expr, int):
        return expr
    if isinstance(expr, IntImm):
        return expr.value
    return None


_FOLDABLE = {
    Add: lambda a, b: a + b,
    Sub: lambda a, b: a - b,
    Mul: lambda a, b: a * b,
    Min: min,
    Max: max,
    EQ: lambda a, b: a == b,
    NE: lambda a, b: a != b,
    LT: lambda a, b: a < b,
    LE: lambda a, b: a <= b,
    GT: lambda a, b: a > b,
    GE: lambda a, b: a >= b,
    And: lambda a, b: bool(a) and bool(b),
    Or: lambda a, b: bool(a) or bool(b),
}


def _fold_div(cls, av, bv):
    if bv == 0:
        raise ZeroDivisionError("constant division by zero in IR construction")
    if cls is FloorDiv:
        return av // bv
    if cls is FloorMod:
        return av - (av // bv) * bv
    if cls is TruncDiv:
        return int(av / bv) if bv else 0
    return av / bv


def _make_binary(cls, a: ExprLike, b: ExprLike, out_dtype: Optional[str] = None) -> PrimExpr:
    """Build a binary node with constant folding on immediates.

    Returns ``NotImplemented`` for operands that cannot be coerced, so
    Python falls back to the other operand's reflected operator (this is
    how e.g. ``te.ReduceAxis`` participates in expressions).
    """
    try:
        if isinstance(a, PrimExpr) and not isinstance(b, PrimExpr):
            b = as_expr(b, a.dtype if not issubclass(cls, CmpOp) else None)
        elif isinstance(b, PrimExpr) and not isinstance(a, PrimExpr):
            a = as_expr(a, b.dtype if not issubclass(cls, CmpOp) else None)
        else:
            a, b = as_expr(a), as_expr(b)
    except TypeError:
        return NotImplemented

    av = _const_value(a)
    bv = _const_value(b)
    if av is not None and bv is not None:
        res_dtype = out_dtype or _dt.promote(a.dtype, b.dtype)
        if cls in _FOLDABLE:
            return const(_coerce(_FOLDABLE[cls](av, bv), res_dtype), res_dtype)
        if cls in (FloorDiv, FloorMod, TruncDiv, Div):
            return const(_coerce(_fold_div(cls, av, bv), res_dtype), res_dtype)
    if issubclass(cls, CmpOp):
        return cls(a, b)
    return cls(a, b, out_dtype)


def _const_value(e: PrimExpr):
    if isinstance(e, IntImm):
        return e.value
    if isinstance(e, FloatImm):
        return e.value
    return None


def _coerce(v, dtype: str):
    if _dt.is_float(dtype):
        return float(v)
    if _dt.is_bool(dtype):
        return bool(v)
    return int(v)


# -- convenience free functions --------------------------------------------


def min_expr(a: ExprLike, b: ExprLike) -> PrimExpr:
    return _make_binary(Min, a, b)


def max_expr(a: ExprLike, b: ExprLike) -> PrimExpr:
    return _make_binary(Max, a, b)


def truncdiv(a: ExprLike, b: ExprLike) -> PrimExpr:
    return _make_binary(TruncDiv, a, b)


def logical_and(a: ExprLike, b: ExprLike) -> PrimExpr:
    av, bv = _const_value(as_expr(a)), _const_value(as_expr(b))
    if av is not None and av:
        return as_expr(b)
    if bv is not None and bv:
        return as_expr(a)
    return _make_binary(And, a, b, out_dtype="bool")


def logical_or(a: ExprLike, b: ExprLike) -> PrimExpr:
    return _make_binary(Or, a, b, out_dtype="bool")


def all_of(conds: Iterable[ExprLike]) -> PrimExpr:
    """Conjunction of ``conds``; ``True`` when empty."""
    result: PrimExpr = const(True)
    for cond in conds:
        result = logical_and(result, cond)
    return result
