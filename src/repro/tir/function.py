"""PrimFunc and IRModule containers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .buffer import Buffer
from .expr import IterVar, Range, Var, const
from .stmt import Block, BlockRealize, Stmt

__all__ = ["PrimFunc", "IRModule", "make_root_block"]


def make_root_block(body: Stmt, alloc_buffers: Sequence[Buffer] = ()) -> BlockRealize:
    """Wrap ``body`` in the canonical iterator-less *root block*.

    Every PrimFunc body is a root block realize; function-level
    intermediate buffers are allocated on the root block.  This mirrors
    the TVM convention and gives scheduling a stable top of the sref tree.
    """
    root = Block(
        name_hint="root",
        iter_vars=(),
        reads=(),
        writes=(),
        body=body,
        alloc_buffers=tuple(alloc_buffers),
    )
    return BlockRealize((), const(True), root)


class PrimFunc:
    """A primitive tensor function: parameters, buffer map and a body.

    ``params`` are handle variables; ``buffer_map`` maps each parameter to
    the :class:`Buffer` it backs.  The body must be a root
    :class:`BlockRealize` (see :func:`make_root_block`).
    """

    # ``_memo_hash`` backs the per-node structural-hash memo (see
    # :mod:`repro.tir.structural`): left unset until first hashed.
    __slots__ = ("params", "buffer_map", "body", "name", "attrs", "_memo_hash")

    def __init__(
        self,
        params: Sequence[Var],
        buffer_map: Mapping[Var, Buffer],
        body: Stmt,
        name: str = "main",
        attrs: Optional[Mapping[str, object]] = None,
    ):
        if not isinstance(body, BlockRealize) or body.block.iter_vars:
            body = make_root_block(body)
        self.params: Tuple[Var, ...] = tuple(params)
        self.buffer_map: Dict[Var, Buffer] = dict(buffer_map)
        self.body: BlockRealize = body
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs or {})
        for p in self.params:
            if p not in self.buffer_map:
                raise ValueError(f"param {p.name} missing from buffer_map")

    @property
    def buffers(self) -> List[Buffer]:
        """Parameter buffers in declaration order."""
        return [self.buffer_map[p] for p in self.params]

    def buffer_by_name(self, name: str) -> Buffer:
        for buf in self.buffer_map.values():
            if buf.name == name:
                return buf
        raise KeyError(f"no parameter buffer named {name}")

    def with_body(self, body: Stmt) -> "PrimFunc":
        """A copy of this function with a new body."""
        return PrimFunc(self.params, self.buffer_map, body, self.name, self.attrs)

    def with_attrs(self, **attrs) -> "PrimFunc":
        merged = dict(self.attrs)
        merged.update(attrs)
        return PrimFunc(self.params, self.buffer_map, self.body, self.name, merged)

    def script(self) -> str:
        """Render this function in the round-trippable script dialect."""
        from .printer import script

        return script(self)

    def __repr__(self) -> str:  # pragma: no cover
        return self.script()


class IRModule:
    """A collection of named PrimFuncs."""

    __slots__ = ("functions",)

    def __init__(self, functions: Optional[Mapping[str, PrimFunc]] = None):
        self.functions: Dict[str, PrimFunc] = dict(functions or {})

    def __getitem__(self, name: str) -> PrimFunc:
        return self.functions[name]

    def __setitem__(self, name: str, func: PrimFunc) -> None:
        self.functions[name] = func

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self) -> Iterable[str]:
        return iter(self.functions)

    def update(self, other: "IRModule") -> None:
        self.functions.update(other.functions)
