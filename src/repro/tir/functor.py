"""IR functors: visitors and (functional) mutators over expressions and
statements.

Mutators are *functional*: they return new nodes and never modify nodes in
place, preserving the immutability contract of the IR.  Sub-trees that are
unchanged are returned as-is so transformations share structure.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from .buffer import Buffer, BufferRegion
from .expr import (
    Add,
    And,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    CmpOp,
    FloatImm,
    IntImm,
    IterVar,
    Not,
    PrimExpr,
    Range,
    Select,
    StringImm,
    Var,
)
from .stmt import (
    AllocateConst,
    Block,
    BlockRealize,
    BufferStore,
    Evaluate,
    For,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
)

__all__ = [
    "ExprVisitor",
    "StmtVisitor",
    "ExprMutator",
    "StmtMutator",
    "post_order_visit",
    "substitute",
    "collect_vars",
]


class ExprVisitor:
    """Recursively visit an expression tree; override ``visit_*`` hooks."""

    def visit(self, expr: PrimExpr) -> None:
        if isinstance(expr, BinaryOp):
            self.visit_binary(expr)
        elif isinstance(expr, Var):
            self.visit_var(expr)
        elif isinstance(expr, (IntImm, FloatImm, StringImm)):
            self.visit_imm(expr)
        elif isinstance(expr, Cast):
            self.visit_cast(expr)
        elif isinstance(expr, Not):
            self.visit_not(expr)
        elif isinstance(expr, Select):
            self.visit_select(expr)
        elif isinstance(expr, BufferLoad):
            self.visit_buffer_load(expr)
        elif isinstance(expr, Call):
            self.visit_call(expr)
        else:
            raise TypeError(f"unhandled expr node: {type(expr).__name__}")

    def visit_binary(self, expr: BinaryOp) -> None:
        self.visit(expr.a)
        self.visit(expr.b)

    def visit_var(self, expr: Var) -> None:
        pass

    def visit_imm(self, expr: PrimExpr) -> None:
        pass

    def visit_cast(self, expr: Cast) -> None:
        self.visit(expr.value)

    def visit_not(self, expr: Not) -> None:
        self.visit(expr.a)

    def visit_select(self, expr: Select) -> None:
        self.visit(expr.condition)
        self.visit(expr.true_value)
        self.visit(expr.false_value)

    def visit_buffer_load(self, expr: BufferLoad) -> None:
        for idx in expr.indices:
            self.visit(idx)

    def visit_call(self, expr: Call) -> None:
        for arg in expr.args:
            self.visit(arg)


class StmtVisitor(ExprVisitor):
    """Recursively visit statements (and the expressions they contain)."""

    def visit_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, BufferStore):
            self.visit_buffer_store(stmt)
        elif isinstance(stmt, SeqStmt):
            self.visit_seq(stmt)
        elif isinstance(stmt, For):
            self.visit_for(stmt)
        elif isinstance(stmt, BlockRealize):
            self.visit_block_realize(stmt)
        elif isinstance(stmt, Block):
            self.visit_block(stmt)
        elif isinstance(stmt, IfThenElse):
            self.visit_if(stmt)
        elif isinstance(stmt, LetStmt):
            self.visit_let(stmt)
        elif isinstance(stmt, Evaluate):
            self.visit_evaluate(stmt)
        elif isinstance(stmt, AllocateConst):
            self.visit_allocate_const(stmt)
        else:
            raise TypeError(f"unhandled stmt node: {type(stmt).__name__}")

    def visit_buffer_store(self, stmt: BufferStore) -> None:
        self.visit(stmt.value)
        for idx in stmt.indices:
            self.visit(idx)

    def visit_seq(self, stmt: SeqStmt) -> None:
        for s in stmt.stmts:
            self.visit_stmt(s)

    def visit_for(self, stmt: For) -> None:
        self.visit(stmt.min)
        self.visit(stmt.extent)
        self.visit_stmt(stmt.body)

    def visit_block_realize(self, stmt: BlockRealize) -> None:
        for v in stmt.iter_values:
            self.visit(v)
        self.visit(stmt.predicate)
        self.visit_stmt(stmt.block)

    def visit_block(self, stmt: Block) -> None:
        if stmt.init is not None:
            self.visit_stmt(stmt.init)
        self.visit_stmt(stmt.body)

    def visit_if(self, stmt: IfThenElse) -> None:
        self.visit(stmt.condition)
        self.visit_stmt(stmt.then_case)
        if stmt.else_case is not None:
            self.visit_stmt(stmt.else_case)

    def visit_let(self, stmt: LetStmt) -> None:
        self.visit(stmt.value)
        self.visit_stmt(stmt.body)

    def visit_evaluate(self, stmt: Evaluate) -> None:
        self.visit(stmt.value)

    def visit_allocate_const(self, stmt: AllocateConst) -> None:
        self.visit_stmt(stmt.body)


class ExprMutator:
    """Functional expression rewriter; returns new nodes bottom-up."""

    def rewrite(self, expr: PrimExpr) -> PrimExpr:
        if isinstance(expr, BinaryOp):
            return self.rewrite_binary(expr)
        if isinstance(expr, Var):
            return self.rewrite_var(expr)
        if isinstance(expr, (IntImm, FloatImm, StringImm)):
            return expr
        if isinstance(expr, Cast):
            return self.rewrite_cast(expr)
        if isinstance(expr, Not):
            return self.rewrite_not(expr)
        if isinstance(expr, Select):
            return self.rewrite_select(expr)
        if isinstance(expr, BufferLoad):
            return self.rewrite_buffer_load(expr)
        if isinstance(expr, Call):
            return self.rewrite_call(expr)
        raise TypeError(f"unhandled expr node: {type(expr).__name__}")

    def rewrite_binary(self, expr: BinaryOp) -> PrimExpr:
        a = self.rewrite(expr.a)
        b = self.rewrite(expr.b)
        if a is expr.a and b is expr.b:
            return expr
        if isinstance(expr, CmpOp):
            return type(expr)(a, b)
        return type(expr)(a, b, expr.dtype)

    def rewrite_var(self, expr: Var) -> PrimExpr:
        return expr

    def rewrite_cast(self, expr: Cast) -> PrimExpr:
        value = self.rewrite(expr.value)
        if value is expr.value:
            return expr
        return Cast(expr.dtype, value)

    def rewrite_not(self, expr: Not) -> PrimExpr:
        a = self.rewrite(expr.a)
        if a is expr.a:
            return expr
        return Not(a)

    def rewrite_select(self, expr: Select) -> PrimExpr:
        cond = self.rewrite(expr.condition)
        tv = self.rewrite(expr.true_value)
        fv = self.rewrite(expr.false_value)
        if cond is expr.condition and tv is expr.true_value and fv is expr.false_value:
            return expr
        return Select(cond, tv, fv)

    def rewrite_buffer_load(self, expr: BufferLoad) -> PrimExpr:
        indices = [self.rewrite(i) for i in expr.indices]
        buffer = self.rewrite_buffer(expr.buffer)
        if buffer is expr.buffer and all(n is o for n, o in zip(indices, expr.indices)):
            return expr
        return BufferLoad(buffer, indices)

    def rewrite_call(self, expr: Call) -> PrimExpr:
        args = [self.rewrite(a) for a in expr.args]
        if all(n is o for n, o in zip(args, expr.args)):
            return expr
        return Call(expr.dtype, expr.op, args)

    def rewrite_buffer(self, buffer: Buffer) -> Buffer:
        """Hook for buffer replacement (default: keep)."""
        return buffer


class StmtMutator(ExprMutator):
    """Functional statement rewriter."""

    def rewrite_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, BufferStore):
            return self.rewrite_buffer_store(stmt)
        if isinstance(stmt, SeqStmt):
            return self.rewrite_seq(stmt)
        if isinstance(stmt, For):
            return self.rewrite_for(stmt)
        if isinstance(stmt, BlockRealize):
            return self.rewrite_block_realize(stmt)
        if isinstance(stmt, Block):
            return self.rewrite_block(stmt)
        if isinstance(stmt, IfThenElse):
            return self.rewrite_if(stmt)
        if isinstance(stmt, LetStmt):
            return self.rewrite_let(stmt)
        if isinstance(stmt, Evaluate):
            return self.rewrite_evaluate(stmt)
        if isinstance(stmt, AllocateConst):
            return self.rewrite_allocate_const(stmt)
        raise TypeError(f"unhandled stmt node: {type(stmt).__name__}")

    def rewrite_buffer_store(self, stmt: BufferStore) -> Stmt:
        value = self.rewrite(stmt.value)
        indices = [self.rewrite(i) for i in stmt.indices]
        buffer = self.rewrite_buffer(stmt.buffer)
        if (
            buffer is stmt.buffer
            and value is stmt.value
            and all(n is o for n, o in zip(indices, stmt.indices))
        ):
            return stmt
        return BufferStore(buffer, value, indices)

    def rewrite_seq(self, stmt: SeqStmt) -> Stmt:
        stmts = [self.rewrite_stmt(s) for s in stmt.stmts]
        if all(n is o for n, o in zip(stmts, stmt.stmts)):
            return stmt
        from .stmt import seq

        return seq(stmts)

    def rewrite_for(self, stmt: For) -> Stmt:
        min_ = self.rewrite(stmt.min)
        extent = self.rewrite(stmt.extent)
        body = self.rewrite_stmt(stmt.body)
        if min_ is stmt.min and extent is stmt.extent and body is stmt.body:
            return stmt
        return For(
            stmt.loop_var, min_, extent, stmt.kind, body, stmt.thread_tag, stmt.annotations
        )

    def rewrite_block_realize(self, stmt: BlockRealize) -> Stmt:
        iter_values = [self.rewrite(v) for v in stmt.iter_values]
        predicate = self.rewrite(stmt.predicate)
        block = self.rewrite_stmt(stmt.block)
        if (
            block is stmt.block
            and predicate is stmt.predicate
            and all(n is o for n, o in zip(iter_values, stmt.iter_values))
        ):
            return stmt
        return BlockRealize(iter_values, predicate, block)

    def rewrite_block(self, stmt: Block) -> Stmt:
        body = self.rewrite_stmt(stmt.body)
        init = self.rewrite_stmt(stmt.init) if stmt.init is not None else None
        reads = [self.rewrite_region(r) for r in stmt.reads]
        writes = [self.rewrite_region(w) for w in stmt.writes]
        alloc = [self.rewrite_buffer(b) for b in stmt.alloc_buffers]
        unchanged = (
            body is stmt.body
            and init is stmt.init
            and all(n is o for n, o in zip(reads, stmt.reads))
            and all(n is o for n, o in zip(writes, stmt.writes))
            and all(n is o for n, o in zip(alloc, stmt.alloc_buffers))
        )
        if unchanged:
            return stmt
        return stmt.replace(
            body=body, init=init, reads=reads, writes=writes, alloc_buffers=alloc
        )

    def rewrite_region(self, region: BufferRegion) -> BufferRegion:
        buffer = self.rewrite_buffer(region.buffer)
        ranges = [self.rewrite_range(r) for r in region.region]
        if buffer is region.buffer and all(n is o for n, o in zip(ranges, region.region)):
            return region
        return BufferRegion(buffer, ranges)

    def rewrite_range(self, rng: Range) -> Range:
        min_ = self.rewrite(rng.min)
        extent = self.rewrite(rng.extent)
        if min_ is rng.min and extent is rng.extent:
            return rng
        return Range(min_, extent)

    def rewrite_if(self, stmt: IfThenElse) -> Stmt:
        condition = self.rewrite(stmt.condition)
        then_case = self.rewrite_stmt(stmt.then_case)
        else_case = self.rewrite_stmt(stmt.else_case) if stmt.else_case is not None else None
        if (
            condition is stmt.condition
            and then_case is stmt.then_case
            and else_case is stmt.else_case
        ):
            return stmt
        return IfThenElse(condition, then_case, else_case)

    def rewrite_let(self, stmt: LetStmt) -> Stmt:
        value = self.rewrite(stmt.value)
        body = self.rewrite_stmt(stmt.body)
        if value is stmt.value and body is stmt.body:
            return stmt
        return LetStmt(stmt.var, value, body)

    def rewrite_evaluate(self, stmt: Evaluate) -> Stmt:
        value = self.rewrite(stmt.value)
        if value is stmt.value:
            return stmt
        return Evaluate(value)

    def rewrite_allocate_const(self, stmt: AllocateConst) -> Stmt:
        body = self.rewrite_stmt(stmt.body)
        if body is stmt.body:
            return stmt
        return AllocateConst(stmt.buffer, stmt.data, body)


# ---------------------------------------------------------------------------
# Common utilities built on the functors
# ---------------------------------------------------------------------------


class _CallbackVisitor(StmtVisitor):
    def __init__(self, fvisit: Callable[[object], None]):
        self._fvisit = fvisit

    def visit(self, expr: PrimExpr) -> None:
        super().visit(expr)
        self._fvisit(expr)

    def visit_stmt(self, stmt: Stmt) -> None:
        super().visit_stmt(stmt)
        self._fvisit(stmt)


def post_order_visit(node, fvisit: Callable[[object], None]) -> None:
    """Call ``fvisit`` on every node (exprs and stmts) in post-order."""
    visitor = _CallbackVisitor(fvisit)
    if isinstance(node, Stmt):
        visitor.visit_stmt(node)
    else:
        visitor.visit(node)


class _SubstituteMutator(StmtMutator):
    def __init__(self, vmap, buffer_map=None):
        self._vmap = vmap
        self._buffer_map = buffer_map or {}

    def rewrite_var(self, expr: Var) -> PrimExpr:
        return self._vmap.get(expr, expr)

    def rewrite_buffer(self, buffer: Buffer) -> Buffer:
        return self._buffer_map.get(buffer, buffer)

    def rewrite_for(self, stmt: For) -> Stmt:
        new = super().rewrite_for(stmt)
        # A Var -> Var mapping renames the loop, so the binder must
        # follow the uses (a Var -> expr mapping implies the caller is
        # eliminating the loop and the binder is irrelevant).
        repl = self._vmap.get(stmt.loop_var)
        if isinstance(repl, Var):
            return For(
                repl, new.min, new.extent, new.kind, new.body,
                new.thread_tag, new.annotations,
            )
        return new


def substitute(node, vmap, buffer_map=None):
    """Substitute variables (and optionally buffers) in an expr or stmt.

    ``vmap`` maps :class:`Var` → :class:`PrimExpr`; ``buffer_map`` maps
    :class:`Buffer` → :class:`Buffer`.
    """
    mut = _SubstituteMutator(vmap, buffer_map)
    if isinstance(node, Stmt):
        return mut.rewrite_stmt(node)
    if isinstance(node, Range):
        return mut.rewrite_range(node)
    if isinstance(node, BufferRegion):
        return mut.rewrite_region(node)
    return mut.rewrite(node)


def collect_vars(node) -> List[Var]:
    """All distinct variables referenced in ``node``, in first-seen order."""
    seen = []
    seen_ids = set()

    def _visit(n):
        if isinstance(n, Var) and id(n) not in seen_ids:
            seen_ids.add(id(n))
            seen.append(n)

    post_order_visit(node, _visit)
    return seen
