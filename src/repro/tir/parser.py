"""Script parser: the inverse of :mod:`repro.tir.printer`.

The script dialect is syntactically valid Python, so parsing rides on
the standard :mod:`ast` module: the module is parsed once and the AST is
walked into TensorIR.  Together with the printer this gives the
round-trip workflow §3.4 describes — construct, dump, inspect, modify
and re-import programs as text.

``parse_script(script(func))`` is structurally equal to ``func`` (tested
property-style over the whole scheduling surface).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from . import dtype as _dt
from .buffer import Buffer, BufferRegion
from .builder import call as _call
from .expr import (
    Add,
    And,
    Div,
    EQ,
    FloorDiv,
    FloorMod,
    GE,
    GT,
    IntImm,
    IterVar,
    LE,
    LT,
    Max,
    Min,
    Mul,
    NE,
    Not,
    Or,
    PrimExpr,
    Range,
    Select,
    Sub,
    TruncDiv,
    Var,
    as_expr,
    const,
    logical_and,
    logical_or,
)
from .function import PrimFunc, make_root_block
from .stmt import (
    Block,
    BlockRealize,
    BufferStore,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    LetStmt,
    Stmt,
    seq,
)

__all__ = ["parse_script", "ParseError"]


class ParseError(Exception):
    pass


_DTYPES = set(_dt.DTYPE_BITS)

_BINOPS = {
    ast.Add: Add,
    ast.Sub: Sub,
    ast.Mult: Mul,
    ast.Div: Div,
    ast.FloorDiv: FloorDiv,
    ast.Mod: FloorMod,
}

_CMPOPS = {
    ast.Eq: EQ,
    ast.NotEq: NE,
    ast.Lt: LT,
    ast.LtE: LE,
    ast.Gt: GT,
    ast.GtE: GE,
}

_LOOP_KINDS = {
    "parallel": ForKind.PARALLEL,
    "vectorized": ForKind.VECTORIZED,
    "unrolled": ForKind.UNROLLED,
}


class _Scope:
    """Name resolution: variables and buffers currently in scope."""

    def __init__(self):
        self.vars: Dict[str, Var] = {}
        self.buffers: Dict[str, Buffer] = {}


class _Parser:
    def __init__(self):
        self.scope = _Scope()

    # -- expressions -----------------------------------------------------
    def expr(self, node: ast.expr) -> PrimExpr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return const(node.value)
            if isinstance(node.value, (int, float)):
                return const(node.value)
            raise ParseError(f"unsupported constant {node.value!r}")
        if isinstance(node, ast.Name):
            if node.id in self.scope.vars:
                return self.scope.vars[node.id]
            raise ParseError(f"unknown name {node.id!r}")
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return const(0) - self.expr(node.operand)
            if isinstance(node.op, ast.Not):
                return Not(self.expr(node.operand))
            raise ParseError("unsupported unary operator")
        if isinstance(node, ast.BinOp):
            cls = _BINOPS.get(type(node.op))
            if cls is None:
                raise ParseError(f"unsupported operator {type(node.op).__name__}")
            from .expr import _make_binary

            return _make_binary(cls, self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise ParseError("chained comparisons are not supported")
            cls = _CMPOPS.get(type(node.ops[0]))
            if cls is None:
                raise ParseError("unsupported comparison")
            from .expr import _make_binary

            return _make_binary(cls, self.expr(node.left), self.expr(node.comparators[0]))
        if isinstance(node, ast.BoolOp):
            parts = [self.expr(v) for v in node.values]
            combine = logical_and if isinstance(node.op, ast.And) else logical_or
            out = parts[0]
            for p in parts[1:]:
                out = combine(out, p)
            return out
        if isinstance(node, ast.IfExp):
            return Select(self.expr(node.test), self.expr(node.body), self.expr(node.orelse))
        if isinstance(node, ast.Subscript):
            buf = self._buffer_of(node.value)
            indices = self._index_list(node.slice)
            return buf[tuple(self.expr(i) for i in indices)]
        if isinstance(node, ast.Call):
            return self._call_expr(node)
        raise ParseError(f"unsupported expression {ast.dump(node)[:60]}")

    def _index_list(self, node: ast.expr) -> List[ast.expr]:
        if isinstance(node, ast.Tuple):
            return list(node.elts)
        return [node]

    def _buffer_of(self, node: ast.expr) -> Buffer:
        if isinstance(node, ast.Name) and node.id in self.scope.buffers:
            return self.scope.buffers[node.id]
        raise ParseError(f"unknown buffer in subscript: {ast.dump(node)[:40]}")

    def _call_expr(self, node: ast.Call) -> PrimExpr:
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name is None:
            raise ParseError("unsupported call form")
        # Parse arguments; string literals stay Python strings (intrinsic
        # arguments like min_value('float16')).
        args = [
            a.value
            if isinstance(a, ast.Constant) and isinstance(a.value, str)
            else self.expr(a)
            for a in node.args
        ]
        if name in _DTYPES:
            (value,) = args
            if isinstance(value, IntImm) and _dt.is_int(name):
                return const(value.value, name)
            from .expr import FloatImm

            if isinstance(value, (IntImm, FloatImm)) and _dt.is_float(name):
                return const(float(value.value), name)
            return value.astype(name)
        if name == "min":
            return Min(args[0], args[1])
        if name == "max":
            return Max(args[0], args[1])
        if name == "select":
            return Select(args[0], args[1], args[2])
        if name == "truncdiv":
            return TruncDiv(args[0], args[1])
        # everything else: a named intrinsic; dtype follows the operands.
        dtype = "float32"
        for a in args:
            if isinstance(a, PrimExpr) and _dt.is_float(a.dtype):
                dtype = a.dtype
                break
        return _call(name, *args, dtype=dtype)

    # -- buffer declarations ---------------------------------------------
    def _parse_buffer_type(self, node: ast.expr, name: str) -> Buffer:
        # Buffer[(shape...), 'dtype'] or Buffer[(shape...), 'dtype', 'scope']
        if not (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "Buffer"
        ):
            raise ParseError(f"expected Buffer[...] annotation for {name}")
        items = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
        shape_node = items[0]
        shape_elts = shape_node.elts if isinstance(shape_node, ast.Tuple) else [shape_node]
        shape = [self.expr(e) for e in shape_elts]
        dtype = items[1].value if len(items) > 1 else "float32"
        scope = items[2].value if len(items) > 2 else "global"
        return Buffer(name, shape, dtype, scope)

    # -- statements --------------------------------------------------------
    def stmts(self, nodes: Sequence[ast.stmt]) -> Stmt:
        out: List[Stmt] = []
        for node in nodes:
            parsed = self.stmt(node)
            if parsed is not None:
                out.append(parsed)
        if not out:
            raise ParseError("empty statement body")
        return seq(out)

    def stmt(self, node: ast.stmt) -> Optional[Stmt]:
        if isinstance(node, ast.For):
            return self._for(node)
        if isinstance(node, ast.With):
            return self._with(node)
        if isinstance(node, ast.Assign):
            return self._assign(node)
        if isinstance(node, ast.If):
            cond = self.expr(node.test)
            then = self.stmts(node.body)
            other = self.stmts(node.orelse) if node.orelse else None
            return IfThenElse(cond, then, other)
        if isinstance(node, ast.Expr):
            # bare calls: reads/writes/attr handled at block level; an
            # expression statement elsewhere is an Evaluate.
            return Evaluate(self.expr(node.value))
        raise ParseError(f"unsupported statement {type(node).__name__}")

    def _assign(self, node: ast.Assign) -> Optional[Stmt]:
        (target,) = node.targets
        if isinstance(target, ast.Subscript):
            buf = self._buffer_of(target.value)
            indices = [self.expr(i) for i in self._index_list(target.slice)]
            value = self.expr(node.value)
            return BufferStore(buf, value, indices)
        raise ParseError(
            "unsupported assignment target (axis/alloc declarations are "
            "only valid in block or function headers)"
        )

    def _for(self, node: ast.For) -> Stmt:
        targets = (
            [e.id for e in node.target.elts]
            if isinstance(node.target, ast.Tuple)
            else [node.target.id]
        )
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)):
            raise ParseError("unsupported loop iterator")
        fname = it.func.id
        loop_vars = [Var(n, "int32") for n in targets]
        for v in loop_vars:
            self.scope.vars[v.name] = v

        def finish(body: Stmt, headers) -> Stmt:
            for var, min_e, extent, kind, tag, notes in reversed(headers):
                body = For(var, min_e, extent, kind, body, tag, notes)
            for v in loop_vars:
                self.scope.vars.pop(v.name, None)
            return body

        if fname == "grid":
            extents = [self.expr(a) for a in it.args]
            if len(extents) != len(loop_vars):
                raise ParseError("grid arity mismatch")
            headers = [
                (v, const(0), e, ForKind.SERIAL, None, None)
                for v, e in zip(loop_vars, extents)
            ]
            return finish(self.stmts(node.body), headers)
        (var,) = loop_vars
        if fname == "range":
            if len(it.args) == 1:
                lo, extent = const(0), self.expr(it.args[0])
            else:
                lo = self.expr(it.args[0])
                hi = self.expr(it.args[1])
                extent = hi - lo
            headers = [(var, lo, extent, ForKind.SERIAL, None, None)]
        elif fname in _LOOP_KINDS:
            headers = [(var, const(0), self.expr(it.args[0]), _LOOP_KINDS[fname], None, None)]
        elif fname == "thread_binding":
            tag = None
            for kw in it.keywords:
                if kw.arg == "thread":
                    tag = kw.value.value
            headers = [
                (var, const(0), self.expr(it.args[0]), ForKind.THREAD_BINDING, tag, None)
            ]
        elif fname == "annotated":
            extent = self.expr(it.args[0])
            kind = it.args[1].value
            tag = it.args[2].value
            notes = ast.literal_eval(it.args[3])
            headers = [(var, const(0), extent, kind, tag, notes)]
        else:
            raise ParseError(f"unknown loop form {fname!r}")
        return finish(self.stmts(node.body), headers)

    def _with(self, node: ast.With) -> Stmt:
        (item,) = node.items
        ctx = item.context_expr
        if not (isinstance(ctx, ast.Call) and isinstance(ctx.func, ast.Name)):
            raise ParseError("unsupported with-statement")
        if ctx.func.id == "block":
            return self._block(ctx, node.body)
        raise ParseError(f"unsupported context {ctx.func.id!r}")

    def _block(self, ctx: ast.Call, body_nodes: Sequence[ast.stmt]) -> Stmt:
        name = ctx.args[0].value if ctx.args else "block"
        iter_vars: List[IterVar] = []
        iter_values: List[PrimExpr] = []
        reads: Optional[List[BufferRegion]] = None
        writes: Optional[List[BufferRegion]] = None
        annotations: Dict[str, object] = {}
        predicate: PrimExpr = const(True)
        init_stmt: Optional[Stmt] = None
        allocs: List[Buffer] = []
        body_stmts: List[ast.stmt] = []
        declared: List[str] = []

        for stmt_node in body_nodes:
            # iterator declarations: v = spatial_axis(extent, binding)
            if (
                isinstance(stmt_node, ast.Assign)
                and isinstance(stmt_node.value, ast.Call)
                and isinstance(stmt_node.value.func, ast.Name)
                and stmt_node.value.func.id.endswith("_axis")
            ):
                call_node = stmt_node.value
                kind = call_node.func.id[: -len("_axis")]
                if kind not in IterVar.KINDS:
                    raise ParseError(f"unknown axis kind {kind!r}")
                extent = self.expr(call_node.args[0])
                binding = self.expr(call_node.args[1])
                var_name = stmt_node.targets[0].id
                var = Var(var_name, "int32")
                self.scope.vars[var_name] = var
                declared.append(var_name)
                iter_vars.append(IterVar(var, Range(0, extent), kind))
                iter_values.append(binding)
                continue
            # signature / annotation calls
            if isinstance(stmt_node, ast.Expr) and isinstance(stmt_node.value, ast.Call):
                call_node = stmt_node.value
                fname = call_node.func.id if isinstance(call_node.func, ast.Name) else None
                if fname == "reads":
                    reads = [self._region(a) for a in call_node.args]
                    continue
                if fname == "writes":
                    writes = [self._region(a) for a in call_node.args]
                    continue
                if fname == "attr":
                    key = call_node.args[0].value
                    annotations[key] = ast.literal_eval(call_node.args[1])
                    continue
                if fname == "where":
                    predicate = self.expr(call_node.args[0])
                    continue
            # allocations
            if (
                isinstance(stmt_node, ast.Assign)
                and isinstance(stmt_node.value, ast.Call)
                and isinstance(stmt_node.value.func, ast.Name)
                and stmt_node.value.func.id == "alloc_buffer"
            ):
                buf_name = stmt_node.targets[0].id
                buf = self._parse_buffer_type(stmt_node.value.args[0], buf_name)
                self.scope.buffers[buf_name] = buf
                allocs.append(buf)
                continue
            # init
            if (
                isinstance(stmt_node, ast.With)
                and isinstance(stmt_node.items[0].context_expr, ast.Call)
                and isinstance(stmt_node.items[0].context_expr.func, ast.Name)
                and stmt_node.items[0].context_expr.func.id == "init"
            ):
                init_stmt = self.stmts(stmt_node.body)
                continue
            body_stmts.append(stmt_node)

        body = self.stmts(body_stmts)
        block = Block(
            name_hint=name,
            iter_vars=iter_vars,
            reads=reads or (),
            writes=writes or (),
            body=body,
            init=init_stmt,
            alloc_buffers=allocs,
            annotations=annotations,
        )
        if reads is None or writes is None:
            from .analysis.regions import detect_block_access_regions

            detected_r, detected_w = detect_block_access_regions(block)
            block = block.replace(
                reads=reads if reads is not None else detected_r,
                writes=writes if writes is not None else detected_w,
            )
        for name_ in declared:
            self.scope.vars.pop(name_, None)
        return BlockRealize(iter_values, predicate, block)

    def _region(self, node: ast.expr) -> BufferRegion:
        if not isinstance(node, ast.Subscript):
            raise ParseError("regions must be subscripts")
        buf = self._buffer_of(node.value)
        ranges = []
        for item in self._index_list(node.slice):
            if isinstance(item, ast.Slice):
                lo = self.expr(item.lower) if item.lower is not None else const(0)
                hi = self.expr(item.upper)
                from ..arith import Analyzer

                ranges.append(Range(lo, Analyzer().simplify(hi - lo)))
            else:
                ranges.append(Range(self.expr(item), const(1)))
        return BufferRegion(buf, ranges)

    # -- function ---------------------------------------------------------
    def parse_func(self, node: ast.FunctionDef) -> PrimFunc:
        params: List[Var] = []
        buffer_map: Dict[Var, Buffer] = {}
        for arg in node.args.args:
            buf = self._parse_buffer_type(arg.annotation, arg.arg)
            handle = Var(arg.arg, "handle")
            params.append(handle)
            buffer_map[handle] = buf
            self.scope.buffers[arg.arg] = buf
        root_allocs: List[Buffer] = []
        body_nodes: List[ast.stmt] = []
        for stmt_node in node.body:
            if (
                isinstance(stmt_node, ast.Assign)
                and isinstance(stmt_node.value, ast.Call)
                and isinstance(stmt_node.value.func, ast.Name)
                and stmt_node.value.func.id == "alloc_buffer"
            ):
                buf_name = stmt_node.targets[0].id
                buf = self._parse_buffer_type(stmt_node.value.args[0], buf_name)
                self.scope.buffers[buf_name] = buf
                root_allocs.append(buf)
            else:
                body_nodes.append(stmt_node)
        body = self.stmts(body_nodes)
        return PrimFunc(
            params,
            buffer_map,
            make_root_block(body, alloc_buffers=root_allocs),
            name=node.name,
        )


def parse_script(text: str) -> PrimFunc:
    """Parse one script-dialect function back into a PrimFunc."""
    module = ast.parse(text)
    funcs = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if len(funcs) != 1:
        raise ParseError(f"expected exactly one function, found {len(funcs)}")
    return _Parser().parse_func(funcs[0])
