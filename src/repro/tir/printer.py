"""Script printer: renders TensorIR in the Python-ish dialect of Figure 4.

The output is meant for humans (debugging, paper-style listings) and for
golden tests.  ``script()`` accepts a PrimFunc, a statement or an
expression.

``script_with_spans`` additionally returns, for every statement in the
tree, the 1-based line range it occupies in the rendered text; the
diagnostics engine uses it through ``render_span`` to underline the
failing statement compiler-style.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .buffer import Buffer, BufferRegion
from .expr import (
    Add,
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    Div,
    FloatImm,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    Not,
    PrimExpr,
    Select,
    StringImm,
    Sub,
    TruncDiv,
    Var,
)
from .stmt import (
    AllocateConst,
    Block,
    BlockRealize,
    BufferStore,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
)

__all__ = ["script", "script_with_spans", "render_span", "expr_str"]

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "//": 5,
    "%": 5,
    "/t/": 5,
}


def expr_str(expr: PrimExpr, parent_prec: int = 0) -> str:
    """Render an expression as a Python-like string."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntImm):
        if expr.dtype == "bool":
            return "True" if expr.value else "False"
        if expr.dtype == "int32":
            return repr(expr.value)
        return f"{expr.dtype}({expr.value})"
    if isinstance(expr, FloatImm):
        text = repr(expr.value)
        return text if expr.dtype == "float32" else f"{expr.dtype}({text})"
    if isinstance(expr, StringImm):
        return repr(expr.value)
    if isinstance(expr, Cast):
        return f"{expr.dtype}({expr_str(expr.value)})"
    if isinstance(expr, (Min, Max)):
        name = "min" if isinstance(expr, Min) else "max"
        return f"{name}({expr_str(expr.a)}, {expr_str(expr.b)})"
    if isinstance(expr, TruncDiv):
        return f"truncdiv({expr_str(expr.a)}, {expr_str(expr.b)})"
    if isinstance(expr, BinaryOp):
        prec = _PRECEDENCE.get(expr.op_name, 5)
        a = expr_str(expr.a, prec)
        b = expr_str(expr.b, prec + 1)
        text = f"{a} {expr.op_name} {b}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, Not):
        return f"not {expr_str(expr.a, 6)}"
    if isinstance(expr, Select):
        return (
            f"select({expr_str(expr.condition)}, "
            f"{expr_str(expr.true_value)}, {expr_str(expr.false_value)})"
        )
    if isinstance(expr, BufferLoad):
        indices = ", ".join(expr_str(i) for i in expr.indices)
        return f"{expr.buffer.name}[{indices}]"
    if isinstance(expr, Call):
        args = ", ".join(expr_str(a) for a in expr.args)
        return f"{expr.op}({args})"
    raise TypeError(f"cannot print expr: {type(expr).__name__}")


def _region_str(region: BufferRegion) -> str:
    dims = []
    for r in region.region:
        if isinstance(r.extent, IntImm) and r.extent.value == 1:
            dims.append(expr_str(r.min))
        else:
            lo = expr_str(r.min)
            hi = expr_str(r.min + r.extent)
            dims.append(f"{lo}:{hi}")
    return f"{region.buffer.name}[{', '.join(dims)}]"


def _buffer_decl(buf: Buffer) -> str:
    shape = ", ".join(expr_str(s) for s in buf.shape)
    scope = "" if buf.scope == "global" else f", {buf.scope!r}"
    return f"Buffer[({shape},), {buf.dtype!r}{scope}]"


class _ScriptPrinter:
    def __init__(self, track_spans: bool = False):
        self.lines: List[str] = []
        self.indent = 0
        #: id(stmt) -> (start_line, end_line), 1-based inclusive
        self.spans: Optional[Dict[int, Tuple[int, int]]] = {} if track_spans else None

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _note_span(self, node, start: int) -> None:
        if self.spans is not None and len(self.lines) >= start:
            self.spans.setdefault(id(node), (start, len(self.lines)))

    def print_stmt(self, stmt: Stmt) -> None:
        method = getattr(self, f"_print_{type(stmt).__name__}", None)
        if method is None:
            raise TypeError(f"cannot print stmt: {type(stmt).__name__}")
        start = len(self.lines) + 1
        method(stmt)
        self._note_span(stmt, start)
        if isinstance(stmt, BlockRealize):
            # The block shares its realize's span (diagnostics may hold
            # either node).
            self._note_span(stmt.block, start)

    def _print_BufferStore(self, stmt: BufferStore) -> None:
        indices = ", ".join(expr_str(i) for i in stmt.indices)
        self.emit(f"{stmt.buffer.name}[{indices}] = {expr_str(stmt.value)}")

    def _print_Evaluate(self, stmt: Evaluate) -> None:
        self.emit(expr_str(stmt.value))

    def _print_SeqStmt(self, stmt: SeqStmt) -> None:
        for s in stmt.stmts:
            self.print_stmt(s)

    def _print_IfThenElse(self, stmt: IfThenElse) -> None:
        self.emit(f"if {expr_str(stmt.condition)}:")
        self.indent += 1
        self.print_stmt(stmt.then_case)
        self.indent -= 1
        if stmt.else_case is not None:
            self.emit("else:")
            self.indent += 1
            self.print_stmt(stmt.else_case)
            self.indent -= 1

    def _print_LetStmt(self, stmt: LetStmt) -> None:
        self.emit(f"{stmt.var.name} = {expr_str(stmt.value)}")
        self.print_stmt(stmt.body)

    def _print_For(self, stmt: For) -> None:
        # Collapse perfectly nested serial loops starting at 0 into `grid`.
        loops = [stmt]
        inner = stmt.body
        while (
            isinstance(inner, For)
            and inner.kind == ForKind.SERIAL
            and stmt.kind == ForKind.SERIAL
            and isinstance(inner.min, IntImm)
            and inner.min.value == 0
            and not loops[-1].annotations
            and not inner.annotations
        ):
            loops.append(inner)
            inner = inner.body
        if len(loops) > 1 and all(
            isinstance(lp.min, IntImm) and lp.min.value == 0 for lp in loops
        ):
            start = len(self.lines) + 1
            names = ", ".join(lp.loop_var.name for lp in loops)
            extents = ", ".join(expr_str(lp.extent) for lp in loops)
            self.emit(f"for {names} in grid({extents}):")
            self.indent += 1
            self.print_stmt(inner)
            self.indent -= 1
            # Collapsed inner loops all map onto the grid line's range.
            for lp in loops[1:]:
                self._note_span(lp, start)
            return
        header = self._loop_header(stmt)
        self.emit(header)
        self.indent += 1
        self.print_stmt(stmt.body)
        self.indent -= 1

    def _loop_header(self, stmt: For) -> str:
        var = stmt.loop_var.name
        if stmt.annotations:
            # Annotated loops print in a parseable long form.
            return (
                f"for {var} in annotated({expr_str(stmt.extent)}, {stmt.kind!r}, "
                f"{stmt.thread_tag!r}, {dict(sorted(stmt.annotations.items()))!r}):"
            )
        if isinstance(stmt.min, IntImm) and stmt.min.value == 0:
            rng = f"range({expr_str(stmt.extent)})"
        else:
            rng = f"range({expr_str(stmt.min)}, {expr_str(stmt.min + stmt.extent)})"
        if stmt.kind == ForKind.SERIAL:
            return f"for {var} in {rng}:"
        if stmt.kind == ForKind.THREAD_BINDING:
            return (
                f"for {var} in thread_binding({expr_str(stmt.extent)}, "
                f"thread={stmt.thread_tag!r}):"
            )
        return f"for {var} in {stmt.kind}({expr_str(stmt.extent)}):"

    def _print_BlockRealize(self, stmt: BlockRealize) -> None:
        block = stmt.block
        self.emit(f'with block({block.name_hint!r}):')
        self.indent += 1
        for iv, value in zip(block.iter_vars, stmt.iter_values):
            kind = {"spatial": "spatial_axis", "reduce": "reduce_axis"}.get(
                iv.kind, f"{iv.kind}_axis"
            )
            dom = expr_str(iv.dom.extent)
            self.emit(f"{iv.var.name} = {kind}({dom}, {expr_str(value)})")
        pred = stmt.predicate
        if not (isinstance(pred, IntImm) and pred.value == 1):
            self.emit(f"where({expr_str(pred)})")
        self._print_block_contents(block)
        self.indent -= 1

    def _print_Block(self, block: Block) -> None:
        self.emit(f'with block({block.name_hint!r}):')
        self.indent += 1
        for iv in block.iter_vars:
            kind = {"spatial": "spatial_axis", "reduce": "reduce_axis"}.get(
                iv.kind, f"{iv.kind}_axis"
            )
            self.emit(f"{iv.var.name} = {kind}({expr_str(iv.dom.extent)})")
        self._print_block_contents(block)
        self.indent -= 1

    def _print_block_contents(self, block: Block) -> None:
        if block.reads:
            self.emit(f"reads({', '.join(_region_str(r) for r in block.reads)})")
        if block.writes:
            self.emit(f"writes({', '.join(_region_str(w) for w in block.writes)})")
        for key, value in sorted(block.annotations.items()):
            self.emit(f"attr({key!r}, {value!r})")
        for buf in block.alloc_buffers:
            self.emit(f"{buf.name} = alloc_buffer({_buffer_decl(buf)})")
        if block.init is not None:
            self.emit("with init():")
            self.indent += 1
            self.print_stmt(block.init)
            self.indent -= 1
        self.print_stmt(block.body)

    def _print_AllocateConst(self, stmt: AllocateConst) -> None:
        self.emit(f"{stmt.buffer.name} = alloc_const({_buffer_decl(stmt.buffer)})")
        self.print_stmt(stmt.body)


def _print_node(node, track_spans: bool = False) -> _ScriptPrinter:
    from .function import PrimFunc

    printer = _ScriptPrinter(track_spans=track_spans)
    if isinstance(node, PrimFunc):
        args = ", ".join(
            f"{node.buffer_map[p].name}: {_buffer_decl(node.buffer_map[p])}" for p in node.params
        )
        printer.emit("@script")
        printer.emit(f"def {node.name}({args}):")
        printer.indent += 1
        root = node.body.block
        for buf in root.alloc_buffers:
            printer.emit(f"{buf.name} = alloc_buffer({_buffer_decl(buf)})")
        printer.print_stmt(root.body)
        printer.indent -= 1
        if printer.spans is not None:
            # The root block/realize span the whole function body.
            printer._note_span(node.body, 1)
            printer._note_span(root, 1)
    elif isinstance(node, Stmt):
        printer.print_stmt(node)
    else:
        raise TypeError(f"cannot print: {type(node).__name__}")
    return printer


def script(node) -> str:
    """Render a PrimFunc / Stmt / PrimExpr as script text."""
    if isinstance(node, PrimExpr):
        return expr_str(node)
    return "\n".join(_print_node(node).lines)


def script_with_spans(node) -> Tuple[str, Dict[int, Tuple[int, int]]]:
    """Render ``node`` and return ``(text, spans)`` where ``spans`` maps
    ``id(stmt)`` to the 1-based inclusive line range it occupies."""
    printer = _print_node(node, track_spans=True)
    return "\n".join(printer.lines), dict(printer.spans or {})


def render_span(
    node, target, *, context: int = 1, max_lines: int = 4
) -> Optional[str]:
    """A compiler-style excerpt of ``node``'s script with ``target``
    (located by identity) underlined:

    .. code-block:: text

          --> matmul:4
        3 |     for i in range(16):
        4 |         with block('oob'):
          |         ^^^^^^^^^^^^^^^^^^

    Returns None when ``target`` is None or does not occur in ``node``.
    """
    if target is None:
        return None
    text, spans = script_with_spans(node)
    span = spans.get(id(target))
    if span is None:
        return None
    lines = text.split("\n")
    start, end = span
    end = min(end, start + max_lines - 1)
    first = max(1, start - context)
    from .function import PrimFunc

    name = node.name if isinstance(node, PrimFunc) else type(node).__name__
    width = len(str(end))
    out = [f"{' ' * width}--> {name}:{start}"]
    for n in range(first, end + 1):
        line = lines[n - 1]
        out.append(f"{n:>{width}} | {line}")
        if start <= n <= end:
            stripped = line.rstrip()
            pad = len(stripped) - len(stripped.lstrip())
            marker = "^" * max(len(stripped) - pad, 1)
            out.append(f"{' ' * width} | {' ' * pad}{marker}")
    if span[1] > end:
        out.append(f"{' ' * width} | ... ({span[1] - end} more lines)")
    return "\n".join(out)
