"""Statement IR for TensorIR.

The statement layer hosts the paper's three structural elements: loop
nests (:class:`For`, possibly thread-bound), **blocks**
(:class:`Block` / :class:`BlockRealize`) and imperative statements
(:class:`BufferStore` etc.).

A :class:`Block` carries the complete *block signature* of §3.1:

* ``iter_vars`` — block iterator variables with domains and kinds
  (spatial / reduce),
* ``reads`` / ``writes`` — access regions over multi-dimensional buffers,
* an optional ``init`` statement for reduction blocks,
* ``alloc_buffers`` — buffers whose lifetime is the block instance.

:class:`BlockRealize` binds the block iterators to expressions of the
outer loop variables (the *binding values* of Figure 5) under a
predicate.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .buffer import Buffer, BufferRegion
from .expr import ExprLike, IterVar, PrimExpr, Range, Var, as_expr, const

__all__ = [
    "Stmt",
    "BufferStore",
    "Evaluate",
    "SeqStmt",
    "IfThenElse",
    "LetStmt",
    "ForKind",
    "For",
    "Block",
    "BlockRealize",
    "AllocateConst",
    "seq",
]


class Stmt:
    """Base class for all statements."""

    # ``_memo_hash`` backs the per-node structural-hash memo (see
    # :mod:`repro.tir.structural`): left unset until first hashed.
    __slots__ = ("_memo_hash",)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import script

        return script(self)


class BufferStore(Stmt):
    """``buffer[indices] = value``."""

    __slots__ = ("buffer", "value", "indices")

    def __init__(self, buffer: Buffer, value: ExprLike, indices: Sequence[ExprLike]):
        self.buffer = buffer
        self.value = as_expr(value, buffer.dtype)
        self.indices: Tuple[PrimExpr, ...] = tuple(as_expr(i) for i in indices)
        if len(self.indices) != buffer.ndim:
            raise ValueError(
                f"BufferStore to {buffer.name}: got {len(self.indices)} indices "
                f"for a {buffer.ndim}-d buffer"
            )


class Evaluate(Stmt):
    """Evaluate an expression for its side effect (intrinsic calls)."""

    __slots__ = ("value",)

    def __init__(self, value: ExprLike):
        self.value = as_expr(value)


class SeqStmt(Stmt):
    """A sequence of statements executed in order."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt]):
        flat: List[Stmt] = []
        for s in stmts:
            if isinstance(s, SeqStmt):
                flat.extend(s.stmts)
            else:
                flat.append(s)
        if len(flat) < 2:
            raise ValueError("SeqStmt needs at least two statements; use seq()")
        self.stmts: Tuple[Stmt, ...] = tuple(flat)


def seq(stmts: Sequence[Stmt]) -> Stmt:
    """Sequence ``stmts``, collapsing the 1-element case."""
    stmts = [s for s in stmts if s is not None]
    if not stmts:
        raise ValueError("empty statement sequence")
    if len(stmts) == 1:
        return stmts[0]
    return SeqStmt(stmts)


class IfThenElse(Stmt):
    __slots__ = ("condition", "then_case", "else_case")

    def __init__(self, condition: ExprLike, then_case: Stmt, else_case: Optional[Stmt] = None):
        self.condition = as_expr(condition)
        self.then_case = then_case
        self.else_case = else_case


class LetStmt(Stmt):
    """Bind ``var = value`` within ``body``."""

    __slots__ = ("var", "value", "body")

    def __init__(self, var: Var, value: ExprLike, body: Stmt):
        self.var = var
        self.value = as_expr(value)
        self.body = body


class ForKind:
    """Loop kinds: execution strategies and annotations for lowering."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    VECTORIZED = "vectorized"
    UNROLLED = "unrolled"
    THREAD_BINDING = "thread_binding"

    ALL = (SERIAL, PARALLEL, VECTORIZED, UNROLLED, THREAD_BINDING)


class For(Stmt):
    """A loop over ``[min, min+extent)``.

    ``kind == ForKind.THREAD_BINDING`` models GPU thread/block axes; the
    hardware axis name (``"threadIdx.x"`` etc.) lives in ``thread_tag``.
    """

    __slots__ = ("loop_var", "min", "extent", "kind", "body", "thread_tag", "annotations")

    def __init__(
        self,
        loop_var: Var,
        min: ExprLike,  # noqa: A002 - IR field name
        extent: ExprLike,
        kind: str = ForKind.SERIAL,
        body: Stmt = None,
        thread_tag: Optional[str] = None,
        annotations: Optional[Mapping[str, object]] = None,
    ):
        if kind not in ForKind.ALL:
            raise ValueError(f"unknown loop kind: {kind}")
        if kind == ForKind.THREAD_BINDING and not thread_tag:
            raise ValueError("thread_binding loop requires a thread_tag")
        if body is None:
            raise ValueError("For requires a body")
        self.loop_var = loop_var
        self.min = as_expr(min)
        self.extent = as_expr(extent)
        self.kind = kind
        self.body = body
        self.thread_tag = thread_tag
        self.annotations: Dict[str, object] = dict(annotations or {})


class Block(Stmt):
    """A block: the paper's unit of tensorized computation isolation.

    The signature (iter_vars / reads / writes / init) is sufficient for
    outer-loop transformations without inspecting ``body`` (§3.1).
    """

    __slots__ = (
        "name_hint",
        "iter_vars",
        "reads",
        "writes",
        "body",
        "init",
        "alloc_buffers",
        "annotations",
    )

    def __init__(
        self,
        name_hint: str,
        iter_vars: Sequence[IterVar],
        reads: Sequence[BufferRegion],
        writes: Sequence[BufferRegion],
        body: Stmt,
        init: Optional[Stmt] = None,
        alloc_buffers: Sequence[Buffer] = (),
        annotations: Optional[Mapping[str, object]] = None,
    ):
        self.name_hint = name_hint
        self.iter_vars: Tuple[IterVar, ...] = tuple(iter_vars)
        self.reads: Tuple[BufferRegion, ...] = tuple(reads)
        self.writes: Tuple[BufferRegion, ...] = tuple(writes)
        self.body = body
        self.init = init
        self.alloc_buffers: Tuple[Buffer, ...] = tuple(alloc_buffers)
        self.annotations: Dict[str, object] = dict(annotations or {})

    @property
    def is_reduction(self) -> bool:
        """True if any block iterator is a reduction axis."""
        return any(iv.is_reduce for iv in self.iter_vars)

    def iter_var_of(self, var: Var) -> IterVar:
        for iv in self.iter_vars:
            if iv.var is var:
                return iv
        raise KeyError(f"{var.name} is not an iterator of block {self.name_hint}")

    def replace(self, **kwargs) -> "Block":
        """A copy of this block with some fields replaced."""
        fields = dict(
            name_hint=self.name_hint,
            iter_vars=self.iter_vars,
            reads=self.reads,
            writes=self.writes,
            body=self.body,
            init=self.init,
            alloc_buffers=self.alloc_buffers,
            annotations=self.annotations,
        )
        fields.update(kwargs)
        return Block(**fields)


class BlockRealize(Stmt):
    """Bind a block's iterators to value expressions under a predicate.

    ``iter_values[i]`` is the binding of ``block.iter_vars[i]``; the
    ``predicate`` guards execution (used e.g. for padding-introduced
    partial tiles).
    """

    __slots__ = ("iter_values", "predicate", "block")

    def __init__(
        self,
        iter_values: Sequence[ExprLike],
        predicate: ExprLike,
        block: Block,
    ):
        self.iter_values: Tuple[PrimExpr, ...] = tuple(as_expr(v) for v in iter_values)
        self.predicate = as_expr(predicate)
        self.block = block
        if len(self.iter_values) != len(block.iter_vars):
            raise ValueError(
                f"block {block.name_hint}: {len(self.iter_values)} binding values "
                f"for {len(block.iter_vars)} iterators"
            )

    def replace(self, **kwargs) -> "BlockRealize":
        fields = dict(
            iter_values=self.iter_values,
            predicate=self.predicate,
            block=self.block,
        )
        fields.update(kwargs)
        return BlockRealize(**fields)


class AllocateConst(Stmt):
    """Allocate a buffer initialised with constant data (weights)."""

    __slots__ = ("buffer", "data", "body")

    def __init__(self, buffer: Buffer, data, body: Stmt):
        self.buffer = buffer
        self.data = data
        self.body = body
