"""Structural (alpha) equality for TensorIR.

Two IR fragments are structurally equal when they have the same tree
shape and their variables/buffers correspond under a consistent bijective
mapping.  This is the comparison used by tests and by tensor-intrinsic
matching (``tensorize`` checks the candidate block against the intrinsic's
*semantics* block up to renaming).
"""

from __future__ import annotations

from typing import Dict, Optional

from .buffer import Buffer, BufferRegion
from .expr import (
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    FloatImm,
    IntImm,
    IterVar,
    Not,
    PrimExpr,
    Range,
    Select,
    StringImm,
    Var,
)
from .function import PrimFunc
from .stmt import (
    AllocateConst,
    Block,
    BlockRealize,
    BufferStore,
    Evaluate,
    For,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
)

__all__ = [
    "structural_equal",
    "structural_hash",
    "assert_structural_equal",
    "StructuralMatcher",
]


class StructuralMatcher:
    """Stateful matcher accumulating var/buffer correspondences."""

    def __init__(self, map_free_vars: bool = False):
        self.map_free_vars = map_free_vars
        self.var_map: Dict[Var, Var] = {}
        self.rev_var_map: Dict[Var, Var] = {}
        self.buffer_map: Dict[Buffer, Buffer] = {}
        self.rev_buffer_map: Dict[Buffer, Buffer] = {}

    # -- bindings --------------------------------------------------------
    def bind_var(self, a: Var, b: Var) -> bool:
        if a.dtype != b.dtype:
            return False
        if a in self.var_map:
            return self.var_map[a] is b
        if b in self.rev_var_map:
            return False
        self.var_map[a] = b
        self.rev_var_map[b] = a
        return True

    def bind_buffer(self, a: Buffer, b: Buffer) -> bool:
        if a in self.buffer_map:
            return self.buffer_map[a] is b
        if b in self.rev_buffer_map:
            return False
        if a.dtype != b.dtype or a.ndim != b.ndim or a.scope != b.scope:
            return False
        if not all(self.match_expr(sa, sb) for sa, sb in zip(a.shape, b.shape)):
            return False
        self.buffer_map[a] = b
        self.rev_buffer_map[b] = a
        return True

    # -- expressions -----------------------------------------------------
    def match_expr(self, a: PrimExpr, b: PrimExpr) -> bool:
        # No identity shortcut: a shared subtree must still register its
        # variable correspondences, or later uses could bind inconsistently.
        if type(a) is not type(b):
            return False
        if a.dtype != b.dtype:
            return False
        if isinstance(a, Var):
            if a in self.var_map:
                return self.var_map[a] is b
            if self.map_free_vars:
                return self.bind_var(a, b)
            # Free vars must be identical; record the self-binding so a
            # later bound use cannot remap either side.
            return a is b and self.bind_var(a, b)
        if isinstance(a, IntImm):
            return a.value == b.value
        if isinstance(a, FloatImm):
            return a.value == b.value
        if isinstance(a, StringImm):
            return a.value == b.value
        if isinstance(a, Cast):
            return self.match_expr(a.value, b.value)
        if isinstance(a, BinaryOp):
            return self.match_expr(a.a, b.a) and self.match_expr(a.b, b.b)
        if isinstance(a, Not):
            return self.match_expr(a.a, b.a)
        if isinstance(a, Select):
            return (
                self.match_expr(a.condition, b.condition)
                and self.match_expr(a.true_value, b.true_value)
                and self.match_expr(a.false_value, b.false_value)
            )
        if isinstance(a, BufferLoad):
            if not self.match_buffer_use(a.buffer, b.buffer):
                return False
            return len(a.indices) == len(b.indices) and all(
                self.match_expr(ia, ib) for ia, ib in zip(a.indices, b.indices)
            )
        if isinstance(a, Call):
            return (
                a.op == b.op
                and len(a.args) == len(b.args)
                and all(self.match_expr(ia, ib) for ia, ib in zip(a.args, b.args))
            )
        raise TypeError(f"unhandled expr node: {type(a).__name__}")

    def match_buffer_use(self, a: Buffer, b: Buffer) -> bool:
        if a in self.buffer_map:
            return self.buffer_map[a] is b
        if self.map_free_vars:
            return self.bind_buffer(a, b)
        return a is b

    def match_range(self, a: Range, b: Range) -> bool:
        return self.match_expr(a.min, b.min) and self.match_expr(a.extent, b.extent)

    def match_region(self, a: BufferRegion, b: BufferRegion) -> bool:
        if not self.match_buffer_use(a.buffer, b.buffer):
            return False
        return len(a.region) == len(b.region) and all(
            self.match_range(ra, rb) for ra, rb in zip(a.region, b.region)
        )

    # -- statements --------------------------------------------------------
    def match_stmt(self, a: Stmt, b: Stmt) -> bool:
        if type(a) is not type(b):
            return False
        if isinstance(a, BufferStore):
            return (
                self.match_buffer_use(a.buffer, b.buffer)
                and self.match_expr(a.value, b.value)
                and len(a.indices) == len(b.indices)
                and all(self.match_expr(ia, ib) for ia, ib in zip(a.indices, b.indices))
            )
        if isinstance(a, Evaluate):
            return self.match_expr(a.value, b.value)
        if isinstance(a, SeqStmt):
            return len(a.stmts) == len(b.stmts) and all(
                self.match_stmt(sa, sb) for sa, sb in zip(a.stmts, b.stmts)
            )
        if isinstance(a, IfThenElse):
            if not self.match_expr(a.condition, b.condition):
                return False
            if not self.match_stmt(a.then_case, b.then_case):
                return False
            if (a.else_case is None) != (b.else_case is None):
                return False
            return a.else_case is None or self.match_stmt(a.else_case, b.else_case)
        if isinstance(a, LetStmt):
            if not self.match_expr(a.value, b.value):
                return False
            if not self.bind_var(a.var, b.var):
                return False
            return self.match_stmt(a.body, b.body)
        if isinstance(a, For):
            if a.kind != b.kind or a.thread_tag != b.thread_tag:
                return False
            if a.annotations != b.annotations:
                return False
            if not (self.match_expr(a.min, b.min) and self.match_expr(a.extent, b.extent)):
                return False
            if not self.bind_var(a.loop_var, b.loop_var):
                return False
            return self.match_stmt(a.body, b.body)
        if isinstance(a, BlockRealize):
            if len(a.iter_values) != len(b.iter_values):
                return False
            if not all(
                self.match_expr(va, vb) for va, vb in zip(a.iter_values, b.iter_values)
            ):
                return False
            if not self.match_expr(a.predicate, b.predicate):
                return False
            return self.match_stmt(a.block, b.block)
        if isinstance(a, Block):
            return self.match_block(a, b)
        if isinstance(a, AllocateConst):
            if not self.bind_buffer(a.buffer, b.buffer):
                return False
            return self.match_stmt(a.body, b.body)
        raise TypeError(f"unhandled stmt node: {type(a).__name__}")

    def match_block(self, a: Block, b: Block) -> bool:
        if len(a.iter_vars) != len(b.iter_vars):
            return False
        for iva, ivb in zip(a.iter_vars, b.iter_vars):
            if iva.kind != ivb.kind:
                return False
            if not self.match_range(iva.dom, ivb.dom):
                return False
            if not self.bind_var(iva.var, ivb.var):
                return False
        if len(a.alloc_buffers) != len(b.alloc_buffers):
            return False
        for ba, bb in zip(a.alloc_buffers, b.alloc_buffers):
            if not self.bind_buffer(ba, bb):
                return False
        if len(a.reads) != len(b.reads) or len(a.writes) != len(b.writes):
            return False
        if not all(self.match_region(ra, rb) for ra, rb in zip(a.reads, b.reads)):
            return False
        if not all(self.match_region(wa, wb) for wa, wb in zip(a.writes, b.writes)):
            return False
        if a.annotations != b.annotations:
            return False
        if (a.init is None) != (b.init is None):
            return False
        if a.init is not None and not self.match_stmt(a.init, b.init):
            return False
        return self.match_stmt(a.body, b.body)

    def match_func(self, a: PrimFunc, b: PrimFunc) -> bool:
        if len(a.params) != len(b.params):
            return False
        for pa, pb in zip(a.params, b.params):
            if not self.bind_var(pa, pb):
                return False
            if not self.bind_buffer(a.buffer_map[pa], b.buffer_map[pb]):
                return False
        return self.match_stmt(a.body, b.body)


def structural_equal(a, b, map_free_vars: bool = False) -> bool:
    """Alpha-equivalence of two IR fragments.

    Bound variables (loop vars, block iters, let vars, function params)
    always correspond positionally; free variables and externally-declared
    buffers must be identical unless ``map_free_vars`` is set.
    """
    matcher = StructuralMatcher(map_free_vars=map_free_vars)
    if isinstance(a, PrimFunc) and isinstance(b, PrimFunc):
        return matcher.match_func(a, b)
    if isinstance(a, Stmt) and isinstance(b, Stmt):
        return matcher.match_stmt(a, b)
    if isinstance(a, PrimExpr) and isinstance(b, PrimExpr):
        return matcher.match_expr(a, b)
    return False


def assert_structural_equal(a, b, map_free_vars: bool = False) -> None:
    """Raise AssertionError with both scripts when not structurally equal."""
    if not structural_equal(a, b, map_free_vars=map_free_vars):
        from .printer import script

        raise AssertionError(
            "structural inequality\n--- lhs ---\n"
            f"{script(a)}\n--- rhs ---\n{script(b)}"
        )


# ---------------------------------------------------------------------------
# structural (alpha-invariant) hashing
# ---------------------------------------------------------------------------
#
# The hash must satisfy: ``structural_equal(a, b)`` implies
# ``structural_hash(a) == structural_hash(b)``, with per-node memoization
# so re-hashing a program that shares subtrees with an already-hashed one
# costs O(shared boundary), not O(tree).
#
# Memoizing per node rules out numbering bound variables top-down (a
# node's hash would then depend on where it sits).  Instead every subtree
# gets a *context-free* summary ``(digest, free_atoms)``: ``free_atoms``
# is the tuple of variables/buffers occurring free in the subtree, in
# first-occurrence order, and ``digest`` describes the tree shape with
# each atom occurrence replaced by its index into that tuple (de
# Bruijn-style levels local to the subtree).  A parent merges its
# children's atom tuples into one first-occurrence list and folds each
# child in as ``(child_digest, index-pattern)``; a binding node
# additionally records where its bound atoms landed and then drops them
# from the outward tuple.  Renaming a bound variable changes neither any
# digest nor any pattern, so alpha-equivalent trees agree node-by-node —
# and each node's summary is a pure function of the subtree, safe to
# cache on the node itself (the ``_memo_hash`` slot; races between
# threads recompute the identical value, which is benign).
#
# What the digest includes mirrors ``StructuralMatcher`` exactly: node
# types, dtypes, immediate values, ``For`` kind/thread_tag/annotations,
# ``Block`` annotations and iterator kinds, ``Call.op``, and buffer
# dtype/ndim/scope/shape at binding sites.  It excludes what the matcher
# ignores: ``PrimFunc.name``, ``Block.name_hint`` and
# ``AllocateConst.data``.  Annotation dicts are canonicalized by sorted
# key so insertion order cannot leak into the hash.
#
# The final ``structural_hash`` combines the root digest with the
# remaining free atoms — by identity (``id``) in the default mode, where
# ``structural_equal`` requires free atoms to be identical objects, or by
# a coarse (dtype, ndim, scope) signature under ``map_free_vars``, where
# any consistent renaming must collide (the contract is one-directional:
# equal programs must agree; unequal programs may).  Hash values are
# therefore stable only within one process — use
# :func:`repro.meta.database.workload_key` for anything persisted.

from .. import cache as _cache

#: hit/miss counters of the per-node memo, surfaced through
#: :func:`repro.cache.cache_stats` as ``tir.structural_hash_nodes``.
_NODE_HITS = 0
_NODE_MISSES = 0

_cache.register_stats_source(
    "tir.structural_hash_nodes", lambda: (_NODE_HITS, _NODE_MISSES)
)

#: leaf digest marking a buffer *use* (the buffer's own signature enters
#: the hash at its binding site, not at every use).
_BUFFER_USE_DIGEST = hash("tir.buffer_use")


def _canon(value):
    """A hashable, order-canonical image of an annotation value."""
    if isinstance(value, dict):
        return ("d",) + tuple((k, _canon(value[k])) for k in sorted(value))
    if isinstance(value, (list, tuple)):
        return ("l",) + tuple(_canon(v) for v in value)
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    return repr(value)


def _combine(kind, attrs, parts, binders=()):
    """Fold child summaries into one ``(digest, free_atoms)`` summary.

    ``parts`` are child ``(digest, atoms)`` pairs in structural order;
    ``binders`` are the atoms this node binds (dropped from the outward
    tuple after their positions are recorded in the digest).
    """
    order = []
    index = {}
    folded = []
    for digest, atoms in parts:
        pattern = []
        for atom in atoms:
            key = id(atom)
            pos = index.get(key)
            if pos is None:
                pos = len(order)
                index[key] = pos
                order.append(atom)
            pattern.append(pos)
        folded.append((digest, tuple(pattern)))
    if binders:
        bound_positions = tuple(index.get(id(b), -1) for b in binders)
        digest = hash((kind, attrs, tuple(folded), bound_positions))
        bound_ids = {id(b) for b in binders}
        free = tuple(a for a in order if id(a) not in bound_ids)
    else:
        digest = hash((kind, attrs, tuple(folded)))
        free = tuple(order)
    return digest, free


def _var_decl(var: Var):
    """The summary of a variable at its binding site."""
    return hash(("VarDecl", var.dtype)), (var,)


def _buffer_use(buf: Buffer):
    return _BUFFER_USE_DIGEST, (buf,)


def _buffer_decl(buf: Buffer):
    """The summary of a buffer at its binding site: signature + shape
    (matching ``StructuralMatcher.bind_buffer``).  Memoized on the node."""
    memo = _cache.caches_enabled()
    if memo:
        cached = getattr(buf, "_memo_hash", None)
        if cached is not None:
            global _NODE_HITS
            _NODE_HITS += 1
            return cached
        global _NODE_MISSES
        _NODE_MISSES += 1
    parts = [_buffer_use(buf)]
    parts.extend(_hash_expr(dim) for dim in buf.shape)
    summary = _combine("BufferDecl", (buf.dtype, buf.ndim, buf.scope), parts)
    if memo:
        buf._memo_hash = summary
    return summary


def _hash_range(rng: Range):
    return _combine("Range", None, (_hash_expr(rng.min), _hash_expr(rng.extent)))


def _hash_region(region: BufferRegion):
    parts = [_buffer_use(region.buffer)]
    for rng in region.region:
        parts.append(_hash_range(rng))
    return _combine("Region", None, parts)


def _hash_expr(expr: PrimExpr):
    memo = _cache.caches_enabled()
    if memo:
        cached = getattr(expr, "_memo_hash", None)
        if cached is not None:
            global _NODE_HITS
            _NODE_HITS += 1
            return cached
        global _NODE_MISSES
        _NODE_MISSES += 1
    if isinstance(expr, Var):
        summary = hash(("Var", expr.dtype)), (expr,)
    elif isinstance(expr, (IntImm, FloatImm, StringImm)):
        summary = hash((type(expr).__name__, expr.dtype, expr.value)), ()
    elif isinstance(expr, Cast):
        summary = _combine("Cast", expr.dtype, (_hash_expr(expr.value),))
    elif isinstance(expr, BinaryOp):
        summary = _combine(
            type(expr).__name__,
            expr.dtype,
            (_hash_expr(expr.a), _hash_expr(expr.b)),
        )
    elif isinstance(expr, Not):
        summary = _combine("Not", expr.dtype, (_hash_expr(expr.a),))
    elif isinstance(expr, Select):
        summary = _combine(
            "Select",
            expr.dtype,
            (
                _hash_expr(expr.condition),
                _hash_expr(expr.true_value),
                _hash_expr(expr.false_value),
            ),
        )
    elif isinstance(expr, BufferLoad):
        parts = [_buffer_use(expr.buffer)]
        parts.extend(_hash_expr(i) for i in expr.indices)
        summary = _combine("BufferLoad", expr.dtype, parts)
    elif isinstance(expr, Call):
        parts = [_hash_expr(a) for a in expr.args]
        summary = _combine("Call", (expr.dtype, expr.op), parts)
    else:
        raise TypeError(f"unhandled expr node: {type(expr).__name__}")
    if memo:
        expr._memo_hash = summary
    return summary


def _hash_block(block: Block):
    parts = []
    kinds = []
    for iv in block.iter_vars:
        kinds.append(iv.kind)
        parts.append(
            _combine(
                "IterVar",
                iv.kind,
                (
                    _hash_expr(iv.dom.min),
                    _hash_expr(iv.dom.extent),
                    _var_decl(iv.var),
                ),
            )
        )
    for buf in block.alloc_buffers:
        parts.append(_buffer_decl(buf))
    for region in block.reads:
        parts.append(_hash_region(region))
    for region in block.writes:
        parts.append(_hash_region(region))
    if block.init is not None:
        parts.append(_hash_stmt(block.init))
    parts.append(_hash_stmt(block.body))
    binders = tuple(iv.var for iv in block.iter_vars) + tuple(block.alloc_buffers)
    # name_hint intentionally excluded: the matcher ignores it.
    attrs = (
        len(block.iter_vars),
        len(block.reads),
        len(block.writes),
        block.init is not None,
        _canon(block.annotations),
    )
    return _combine("Block", attrs, parts, binders)


def _hash_stmt(stmt: Stmt):
    memo = _cache.caches_enabled()
    if memo:
        cached = getattr(stmt, "_memo_hash", None)
        if cached is not None:
            global _NODE_HITS
            _NODE_HITS += 1
            return cached
        global _NODE_MISSES
        _NODE_MISSES += 1
    if isinstance(stmt, BufferStore):
        parts = [_buffer_use(stmt.buffer), _hash_expr(stmt.value)]
        parts.extend(_hash_expr(i) for i in stmt.indices)
        summary = _combine("BufferStore", None, parts)
    elif isinstance(stmt, Evaluate):
        summary = _combine("Evaluate", None, (_hash_expr(stmt.value),))
    elif isinstance(stmt, SeqStmt):
        summary = _combine("SeqStmt", None, [_hash_stmt(s) for s in stmt.stmts])
    elif isinstance(stmt, IfThenElse):
        parts = [_hash_expr(stmt.condition), _hash_stmt(stmt.then_case)]
        if stmt.else_case is not None:
            parts.append(_hash_stmt(stmt.else_case))
        summary = _combine("IfThenElse", stmt.else_case is not None, parts)
    elif isinstance(stmt, LetStmt):
        parts = (
            _hash_expr(stmt.value),
            _var_decl(stmt.var),
            _hash_stmt(stmt.body),
        )
        summary = _combine("LetStmt", None, parts, (stmt.var,))
    elif isinstance(stmt, For):
        parts = (
            _hash_expr(stmt.min),
            _hash_expr(stmt.extent),
            _var_decl(stmt.loop_var),
            _hash_stmt(stmt.body),
        )
        attrs = (stmt.kind, stmt.thread_tag, _canon(stmt.annotations))
        summary = _combine("For", attrs, parts, (stmt.loop_var,))
    elif isinstance(stmt, BlockRealize):
        parts = [_hash_expr(v) for v in stmt.iter_values]
        parts.append(_hash_expr(stmt.predicate))
        parts.append(_hash_stmt(stmt.block))
        summary = _combine("BlockRealize", len(stmt.iter_values), parts)
    elif isinstance(stmt, Block):
        summary = _hash_block(stmt)
    elif isinstance(stmt, AllocateConst):
        # ``data`` intentionally excluded: the matcher ignores it.
        parts = (_buffer_decl(stmt.buffer), _hash_stmt(stmt.body))
        summary = _combine("AllocateConst", None, parts, (stmt.buffer,))
    else:
        raise TypeError(f"unhandled stmt node: {type(stmt).__name__}")
    if memo:
        stmt._memo_hash = summary
    return summary


def _hash_func(func: PrimFunc):
    memo = _cache.caches_enabled()
    if memo:
        cached = getattr(func, "_memo_hash", None)
        if cached is not None:
            global _NODE_HITS
            _NODE_HITS += 1
            return cached
        global _NODE_MISSES
        _NODE_MISSES += 1
    parts = []
    binders = []
    for param in func.params:
        parts.append(_var_decl(param))
        parts.append(_buffer_decl(func.buffer_map[param]))
        binders.append(param)
        binders.append(func.buffer_map[param])
    parts.append(_hash_stmt(func.body))
    # name (and attrs) intentionally excluded: the matcher ignores them.
    summary = _combine("PrimFunc", len(func.params), parts, tuple(binders))
    if memo:
        func._memo_hash = summary
    return summary


def _free_atom_signature(atom) -> tuple:
    if isinstance(atom, Buffer):
        return ("buffer", atom.dtype, atom.ndim, atom.scope)
    return ("var", atom.dtype)


def structural_hash(node, map_free_vars: bool = False) -> int:
    """Alpha-invariant hash consistent with :func:`structural_equal`:
    equal programs always agree (collisions the other way are possible
    but vanishingly rare).  Summaries are cached per node, so re-hashing
    shared subtrees is O(1).  Values are stable only within one process.
    """
    if isinstance(node, PrimFunc):
        digest, free = _hash_func(node)
    elif isinstance(node, Stmt):
        digest, free = _hash_stmt(node)
    elif isinstance(node, PrimExpr):
        digest, free = _hash_expr(node)
    else:
        raise TypeError(f"cannot structurally hash {type(node).__name__}")
    if map_free_vars:
        tail = tuple(_free_atom_signature(a) for a in free)
    else:
        tail = tuple(id(a) for a in free)
    return hash((digest, map_free_vars, tail))
