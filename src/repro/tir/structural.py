"""Structural (alpha) equality for TensorIR.

Two IR fragments are structurally equal when they have the same tree
shape and their variables/buffers correspond under a consistent bijective
mapping.  This is the comparison used by tests and by tensor-intrinsic
matching (``tensorize`` checks the candidate block against the intrinsic's
*semantics* block up to renaming).
"""

from __future__ import annotations

from typing import Dict, Optional

from .buffer import Buffer, BufferRegion
from .expr import (
    BinaryOp,
    BufferLoad,
    Call,
    Cast,
    FloatImm,
    IntImm,
    IterVar,
    Not,
    PrimExpr,
    Range,
    Select,
    StringImm,
    Var,
)
from .function import PrimFunc
from .stmt import (
    AllocateConst,
    Block,
    BlockRealize,
    BufferStore,
    Evaluate,
    For,
    IfThenElse,
    LetStmt,
    SeqStmt,
    Stmt,
)

__all__ = ["structural_equal", "assert_structural_equal", "StructuralMatcher"]


class StructuralMatcher:
    """Stateful matcher accumulating var/buffer correspondences."""

    def __init__(self, map_free_vars: bool = False):
        self.map_free_vars = map_free_vars
        self.var_map: Dict[Var, Var] = {}
        self.rev_var_map: Dict[Var, Var] = {}
        self.buffer_map: Dict[Buffer, Buffer] = {}
        self.rev_buffer_map: Dict[Buffer, Buffer] = {}

    # -- bindings --------------------------------------------------------
    def bind_var(self, a: Var, b: Var) -> bool:
        if a.dtype != b.dtype:
            return False
        if a in self.var_map:
            return self.var_map[a] is b
        if b in self.rev_var_map:
            return False
        self.var_map[a] = b
        self.rev_var_map[b] = a
        return True

    def bind_buffer(self, a: Buffer, b: Buffer) -> bool:
        if a in self.buffer_map:
            return self.buffer_map[a] is b
        if b in self.rev_buffer_map:
            return False
        if a.dtype != b.dtype or a.ndim != b.ndim or a.scope != b.scope:
            return False
        if not all(self.match_expr(sa, sb) for sa, sb in zip(a.shape, b.shape)):
            return False
        self.buffer_map[a] = b
        self.rev_buffer_map[b] = a
        return True

    # -- expressions -----------------------------------------------------
    def match_expr(self, a: PrimExpr, b: PrimExpr) -> bool:
        # No identity shortcut: a shared subtree must still register its
        # variable correspondences, or later uses could bind inconsistently.
        if type(a) is not type(b):
            return False
        if a.dtype != b.dtype:
            return False
        if isinstance(a, Var):
            if a in self.var_map:
                return self.var_map[a] is b
            if self.map_free_vars:
                return self.bind_var(a, b)
            # Free vars must be identical; record the self-binding so a
            # later bound use cannot remap either side.
            return a is b and self.bind_var(a, b)
        if isinstance(a, IntImm):
            return a.value == b.value
        if isinstance(a, FloatImm):
            return a.value == b.value
        if isinstance(a, StringImm):
            return a.value == b.value
        if isinstance(a, Cast):
            return self.match_expr(a.value, b.value)
        if isinstance(a, BinaryOp):
            return self.match_expr(a.a, b.a) and self.match_expr(a.b, b.b)
        if isinstance(a, Not):
            return self.match_expr(a.a, b.a)
        if isinstance(a, Select):
            return (
                self.match_expr(a.condition, b.condition)
                and self.match_expr(a.true_value, b.true_value)
                and self.match_expr(a.false_value, b.false_value)
            )
        if isinstance(a, BufferLoad):
            if not self.match_buffer_use(a.buffer, b.buffer):
                return False
            return len(a.indices) == len(b.indices) and all(
                self.match_expr(ia, ib) for ia, ib in zip(a.indices, b.indices)
            )
        if isinstance(a, Call):
            return (
                a.op == b.op
                and len(a.args) == len(b.args)
                and all(self.match_expr(ia, ib) for ia, ib in zip(a.args, b.args))
            )
        raise TypeError(f"unhandled expr node: {type(a).__name__}")

    def match_buffer_use(self, a: Buffer, b: Buffer) -> bool:
        if a in self.buffer_map:
            return self.buffer_map[a] is b
        if self.map_free_vars:
            return self.bind_buffer(a, b)
        return a is b

    def match_range(self, a: Range, b: Range) -> bool:
        return self.match_expr(a.min, b.min) and self.match_expr(a.extent, b.extent)

    def match_region(self, a: BufferRegion, b: BufferRegion) -> bool:
        if not self.match_buffer_use(a.buffer, b.buffer):
            return False
        return len(a.region) == len(b.region) and all(
            self.match_range(ra, rb) for ra, rb in zip(a.region, b.region)
        )

    # -- statements --------------------------------------------------------
    def match_stmt(self, a: Stmt, b: Stmt) -> bool:
        if type(a) is not type(b):
            return False
        if isinstance(a, BufferStore):
            return (
                self.match_buffer_use(a.buffer, b.buffer)
                and self.match_expr(a.value, b.value)
                and len(a.indices) == len(b.indices)
                and all(self.match_expr(ia, ib) for ia, ib in zip(a.indices, b.indices))
            )
        if isinstance(a, Evaluate):
            return self.match_expr(a.value, b.value)
        if isinstance(a, SeqStmt):
            return len(a.stmts) == len(b.stmts) and all(
                self.match_stmt(sa, sb) for sa, sb in zip(a.stmts, b.stmts)
            )
        if isinstance(a, IfThenElse):
            if not self.match_expr(a.condition, b.condition):
                return False
            if not self.match_stmt(a.then_case, b.then_case):
                return False
            if (a.else_case is None) != (b.else_case is None):
                return False
            return a.else_case is None or self.match_stmt(a.else_case, b.else_case)
        if isinstance(a, LetStmt):
            if not self.match_expr(a.value, b.value):
                return False
            if not self.bind_var(a.var, b.var):
                return False
            return self.match_stmt(a.body, b.body)
        if isinstance(a, For):
            if a.kind != b.kind or a.thread_tag != b.thread_tag:
                return False
            if a.annotations != b.annotations:
                return False
            if not (self.match_expr(a.min, b.min) and self.match_expr(a.extent, b.extent)):
                return False
            if not self.bind_var(a.loop_var, b.loop_var):
                return False
            return self.match_stmt(a.body, b.body)
        if isinstance(a, BlockRealize):
            if len(a.iter_values) != len(b.iter_values):
                return False
            if not all(
                self.match_expr(va, vb) for va, vb in zip(a.iter_values, b.iter_values)
            ):
                return False
            if not self.match_expr(a.predicate, b.predicate):
                return False
            return self.match_stmt(a.block, b.block)
        if isinstance(a, Block):
            return self.match_block(a, b)
        if isinstance(a, AllocateConst):
            if not self.bind_buffer(a.buffer, b.buffer):
                return False
            return self.match_stmt(a.body, b.body)
        raise TypeError(f"unhandled stmt node: {type(a).__name__}")

    def match_block(self, a: Block, b: Block) -> bool:
        if len(a.iter_vars) != len(b.iter_vars):
            return False
        for iva, ivb in zip(a.iter_vars, b.iter_vars):
            if iva.kind != ivb.kind:
                return False
            if not self.match_range(iva.dom, ivb.dom):
                return False
            if not self.bind_var(iva.var, ivb.var):
                return False
        if len(a.alloc_buffers) != len(b.alloc_buffers):
            return False
        for ba, bb in zip(a.alloc_buffers, b.alloc_buffers):
            if not self.bind_buffer(ba, bb):
                return False
        if len(a.reads) != len(b.reads) or len(a.writes) != len(b.writes):
            return False
        if not all(self.match_region(ra, rb) for ra, rb in zip(a.reads, b.reads)):
            return False
        if not all(self.match_region(wa, wb) for wa, wb in zip(a.writes, b.writes)):
            return False
        if a.annotations != b.annotations:
            return False
        if (a.init is None) != (b.init is None):
            return False
        if a.init is not None and not self.match_stmt(a.init, b.init):
            return False
        return self.match_stmt(a.body, b.body)

    def match_func(self, a: PrimFunc, b: PrimFunc) -> bool:
        if len(a.params) != len(b.params):
            return False
        for pa, pb in zip(a.params, b.params):
            if not self.bind_var(pa, pb):
                return False
            if not self.bind_buffer(a.buffer_map[pa], b.buffer_map[pb]):
                return False
        return self.match_stmt(a.body, b.body)


def structural_equal(a, b, map_free_vars: bool = False) -> bool:
    """Alpha-equivalence of two IR fragments.

    Bound variables (loop vars, block iters, let vars, function params)
    always correspond positionally; free variables and externally-declared
    buffers must be identical unless ``map_free_vars`` is set.
    """
    matcher = StructuralMatcher(map_free_vars=map_free_vars)
    if isinstance(a, PrimFunc) and isinstance(b, PrimFunc):
        return matcher.match_func(a, b)
    if isinstance(a, Stmt) and isinstance(b, Stmt):
        return matcher.match_stmt(a, b)
    if isinstance(a, PrimExpr) and isinstance(b, PrimExpr):
        return matcher.match_expr(a, b)
    return False


def assert_structural_equal(a, b, map_free_vars: bool = False) -> None:
    """Raise AssertionError with both scripts when not structurally equal."""
    if not structural_equal(a, b, map_free_vars=map_free_vars):
        from .printer import script

        raise AssertionError(
            "structural inequality\n--- lhs ---\n"
            f"{script(a)}\n--- rhs ---\n{script(b)}"
        )
