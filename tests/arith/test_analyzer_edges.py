"""Edge-case tests for the analyzer and simplifier interplay."""

import pytest

from repro.arith import Analyzer, IntSet
from repro.tir import (
    Cast,
    Range,
    Select,
    Var,
    call,
    const,
    const_int_value,
    expr_str,
)


class TestAnalyzerEdges:
    def test_symbolic_range_bind(self):
        n = Var("n")
        x = Var("x")
        ana = Analyzer()
        ana.bind(n, Range(0, 10))
        ana.bind(x, Range(n, 5))  # symbolic min: [n, n+4] ⊆ [0, 13]
        s = ana.int_set(x)
        assert s.min_value == 0 and s.max_value == 13

    def test_point_binding_constant_folds(self):
        x, y = Var("x"), Var("y")
        ana = Analyzer()
        ana.bind(x, 3)
        ana.bind(y, Range(0, 4))
        assert expr_str(ana.simplify(x * y + x)) == "y * 3 + 3"

    def test_cast_of_constant_folds(self):
        ana = Analyzer()
        out = ana.simplify(Cast("int64", const(7)) + const(1, "int64"))
        assert const_int_value(out) == 8

    def test_select_atoms_simplified_recursively(self):
        x = Var("x")
        ana = Analyzer()
        out = ana.simplify(Select(x < 4, x + x, x * 2))
        # both arms canonicalise to x*2 (though Select is kept).
        assert "x * 2" in expr_str(out)

    def test_call_arguments_simplified(self):
        x = Var("x")
        ana = Analyzer()
        out = ana.simplify(call("exp", (x + x) - x))
        assert expr_str(out) == "exp(x)"

    def test_nested_divmod_tower(self):
        # ((x//4)//4)//4 == x//64
        x = Var("x")
        ana = Analyzer()
        out = ana.simplify(((x // 4) // 4) // 4)
        assert expr_str(out) == "x // 64"

    def test_mod_mod_reduction(self):
        x = Var("x")
        ana = Analyzer()
        ana.bind(x, Range(0, 256))
        # (x % 16) % 16 == x % 16 (inner already in range)
        out = ana.simplify((x % 16) % 16)
        assert expr_str(out) == "x % 16"

    def test_prove_strict_vs_weak(self):
        x = Var("x")
        ana = Analyzer()
        ana.bind(x, Range(0, 8))
        assert ana.can_prove(x <= 7)
        assert not ana.can_prove(x < 7)
        assert ana.can_prove(x * 2 <= 14)

    def test_unbound_var_conservative(self):
        x = Var("x")
        ana = Analyzer()
        assert not ana.can_prove(x >= 0)
        assert ana.const_int(x * 0) == 0
