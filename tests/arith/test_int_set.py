"""Tests for interval sets, including a conservativeness property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import IntSet, eval_int_set, intersect, range_to_set, union
from repro.tir import Range, Var, const, evaluate_expr


class TestIntSetBasics:
    def test_point(self):
        s = IntSet.point(5)
        assert s.is_point and s.extent() == 1
        assert s.contains_value(5) and not s.contains_value(6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IntSet(3, 2)

    def test_from_range(self):
        s = IntSet.from_range(2, 4)
        assert (s.min_value, s.max_value) == (2, 5)

    def test_everything(self):
        s = IntSet.everything()
        assert not s.is_bounded
        assert s.contains(IntSet(-1000, 1000))

    def test_arith(self):
        a, b = IntSet(0, 3), IntSet(1, 2)
        assert (a + b) == IntSet(1, 5)
        assert (a - b) == IntSet(-2, 2)
        assert (a * IntSet.point(-2)) == IntSet(-6, 0)
        assert (-a) == IntSet(-3, 0)

    def test_floordiv(self):
        assert IntSet(0, 7).floordiv(IntSet.point(2)) == IntSet(0, 3)
        assert IntSet(-5, 5).floordiv(IntSet.point(2)) == IntSet(-3, 2)
        # Division by a range containing zero is unbounded.
        assert not IntSet(0, 7).floordiv(IntSet(-1, 1)).is_bounded

    def test_floormod(self):
        assert IntSet(0, 100).floormod(IntSet.point(8)) == IntSet(0, 7)
        assert IntSet(16, 19).floormod(IntSet.point(8)) == IntSet(0, 3)

    def test_union_intersect(self):
        a, b = IntSet(0, 3), IntSet(5, 9)
        assert union([a, b]) == IntSet(0, 9)
        assert intersect([a, b]) is None
        assert intersect([IntSet(0, 6), IntSet(4, 9)]) == IntSet(4, 6)

    def test_range_to_set(self):
        assert range_to_set(Range(3, 4)) == IntSet(3, 6)
        with pytest.raises(ValueError):
            range_to_set(Range(Var("n"), 4))


class TestEvalIntSet:
    def test_affine(self):
        x = Var("x")
        s = eval_int_set(x * 3 + 2, {x: IntSet(0, 9)})
        assert s == IntSet(2, 29)

    def test_unknown_var_unbounded(self):
        x = Var("x")
        assert not eval_int_set(x + 1, {}).is_bounded

    def test_min_max_select(self):
        from repro.tir import Max, Min, Select

        x, y = Var("x"), Var("y")
        dom = {x: IntSet(0, 4), y: IntSet(2, 6)}
        assert eval_int_set(Min(x, y), dom) == IntSet(0, 4)
        assert eval_int_set(Max(x, y), dom) == IntSet(2, 6)
        assert eval_int_set(Select(x < y, x, y), dom) == IntSet(0, 6)


# -- property: eval_int_set is a sound over-approximation -----------------

_V = [Var(n) for n in ("p", "q")]
_EXT = {_V[0]: 13, _V[1]: 5}


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from(_V), st.integers(min_value=-6, max_value=6).map(const)
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        sub,
        st.tuples(sub, sub).map(lambda t: t[0] + t[1]),
        st.tuples(sub, sub).map(lambda t: t[0] - t[1]),
        st.tuples(sub, sub).map(lambda t: t[0] * t[1]),
        st.tuples(sub, st.integers(min_value=1, max_value=7)).map(lambda t: t[0] // t[1]),
        st.tuples(sub, st.integers(min_value=1, max_value=7)).map(lambda t: t[0] % t[1]),
    )


@settings(max_examples=300, deadline=None)
@given(expr=_exprs(3), data=st.data())
def test_int_set_is_conservative(expr, data):
    dom = {v: IntSet(0, ext - 1) for v, ext in _EXT.items()}
    bound = eval_int_set(expr, dom)
    env = {
        v: data.draw(st.integers(min_value=0, max_value=ext - 1), label=v.name)
        for v, ext in _EXT.items()
    }
    value = evaluate_expr(expr, env)
    assert bound.contains_value(value)
