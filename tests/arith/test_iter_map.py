"""Tests for quasi-affine iterator-map detection (§3.3 validation core).

Includes a hypothesis cross-check: whenever detect_iter_map accepts a set
of bindings as bijective, brute-force enumeration of the (small) input
space must confirm the mapping is injective.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import detect_iter_map
from repro.tir import Var, evaluate_expr


def _vars(*names):
    return [Var(n) for n in names]


class TestAccepts:
    def test_identity(self):
        i, j = _vars("i", "j")
        assert detect_iter_map([i, j], {i: 4, j: 8}) is not None

    def test_split(self):
        i = Var("i")
        assert detect_iter_map([i // 4, i % 4], {i: 16}) is not None

    def test_three_way_split(self):
        i = Var("i")
        r = detect_iter_map([i // 16, (i // 4) % 4, i % 4], {i: 64})
        assert r is not None

    def test_fuse(self):
        i, j = _vars("i", "j")
        assert detect_iter_map([i * 8 + j], {i: 4, j: 8}) is not None

    def test_fuse_then_split(self):
        i, j = _vars("i", "j")
        bindings = [(i * 8 + j) // 4, (i * 8 + j) % 4]
        assert detect_iter_map(bindings, {i: 4, j: 8}) is not None

    def test_unit_extent_iter_ignored(self):
        i, u = _vars("i", "u")
        assert detect_iter_map([i + u], {i: 8, u: 1}) is not None

    def test_constant_offset_binding(self):
        # A constant base is fine for injectivity (e.g. padded offsets).
        i = Var("i")
        assert detect_iter_map([i + 3], {i: 8}) is not None

    def test_permuted_fuse(self):
        i, j, k = _vars("i", "j", "k")
        bindings = [j, i * 4 + k]
        assert detect_iter_map(bindings, {i: 8, j: 3, k: 4}) is not None


class TestRejects:
    def test_dependent_bindings_paper_example(self):
        # v1 = i, v2 = i * 2 (paper §3.3) — not independent.
        i = Var("i")
        assert detect_iter_map([i, i * 2], {i: 16}) is None

    def test_duplicate_use(self):
        i, j = _vars("i", "j")
        assert detect_iter_map([i, i], {i: 4, j: 4}) is None

    def test_overlapping_fuse_scales(self):
        i, j = _vars("i", "j")
        # j has extent 6 > scale 4: values overlap, not injective.
        assert detect_iter_map([i * 4 + j], {i: 4, j: 6}) is None

    def test_missing_coverage_when_bijective_required(self):
        i, j = _vars("i", "j")
        assert detect_iter_map([i], {i: 4, j: 4}) is None
        assert detect_iter_map([i], {i: 4, j: 4}, require_bijective=False) is not None

    def test_partial_digit_use_rejected_when_bijective(self):
        i = Var("i")
        assert detect_iter_map([i // 4], {i: 16}) is None
        assert detect_iter_map([i // 4], {i: 16}, require_bijective=False) is not None

    def test_non_affine_product(self):
        i, j = _vars("i", "j")
        assert detect_iter_map([i * j], {i: 4, j: 4}) is None

    def test_free_variable(self):
        i, n = _vars("i", "n")
        assert detect_iter_map([i + n * 4], {i: 4}) is None

    def test_non_divisible_split(self):
        i = Var("i")
        # 10 is not divisible by 4: the digits don't align.
        assert detect_iter_map([i // 4, i % 4], {i: 10}) is None


# ---------------------------------------------------------------------------
# Property: accepted mappings are genuinely injective (brute force).
# ---------------------------------------------------------------------------


@st.composite
def _binding_case(draw):
    i, j = Var("i"), Var("j")
    ei = draw(st.sampled_from([2, 3, 4, 6, 8]))
    ej = draw(st.sampled_from([2, 3, 4]))
    f = i * ej + j  # fused iterator, extent ei*ej
    c1 = draw(st.sampled_from([2, 3, 4, 5, 8]))
    pool = [
        [i, j],
        [j, i],
        [f],
        [f // c1, f % c1],
        [i // 2, i % 2, j],
        [i, i],          # bad
        [i * 2, j],      # bad (gap) — actually injective but digits misaligned
        [f // c1],       # partial
        [i + j],         # overlapping unless ej == 1
    ]
    bindings = draw(st.sampled_from(pool))
    return bindings, {i: ei, j: ej}, (i, j)


@settings(max_examples=200, deadline=None)
@given(case=_binding_case())
def test_accepted_maps_are_injective(case):
    bindings, extents, (i, j) = case
    result = detect_iter_map(bindings, extents)
    if result is None:
        return  # rejection is always safe
    seen = set()
    for vi, vj in itertools.product(range(extents[i]), range(extents[j])):
        values = tuple(evaluate_expr(b, {i: vi, j: vj}) for b in bindings)
        assert values not in seen, f"accepted non-injective map {bindings}"
        seen.add(values)


@settings(max_examples=100, deadline=None)
@given(case=_binding_case())
def test_bijective_maps_cover_expected_space(case):
    """Bijective acceptance implies the image size equals the domain size."""
    bindings, extents, (i, j) = case
    result = detect_iter_map(bindings, extents, require_bijective=True)
    if result is None:
        return
    image = set()
    for vi, vj in itertools.product(range(extents[i]), range(extents[j])):
        image.add(tuple(evaluate_expr(b, {i: vi, j: vj}) for b in bindings))
    assert len(image) == extents[i] * extents[j]
