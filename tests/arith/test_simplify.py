"""Tests for the canonical simplifier — including a hypothesis property:
simplification never changes the value of an expression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import Analyzer
from repro.tir import (
    FloorDiv,
    FloorMod,
    Max,
    Min,
    Range,
    Select,
    Var,
    const,
    const_int_value,
    evaluate_expr,
    expr_str,
)


@pytest.fixture()
def ana():
    return Analyzer()


class TestLinearCanonicalization:
    def test_combine_like_terms(self, ana):
        x = Var("x")
        assert expr_str(ana.simplify(x + x + x)) == "x * 3"

    def test_cancellation(self, ana):
        x, y = Var("x"), Var("y")
        assert const_int_value(ana.simplify(x + y - x - y)) == 0

    def test_constant_collection(self, ana):
        x = Var("x")
        assert expr_str(ana.simplify(x + 3 + x - 1)) == "x * 2 + 2"

    def test_mul_distribution(self, ana):
        x = Var("x")
        assert expr_str(ana.simplify((x + 1) * 4)) == "x * 4 + 4"

    def test_deterministic_term_order(self, ana):
        x, y = Var("x"), Var("y")
        a = ana.simplify(x + y)
        b = ana.simplify(y + x)
        assert expr_str(a) == expr_str(b)


class TestDivMod:
    def test_exact_div(self, ana):
        x = Var("x")
        assert expr_str(ana.simplify((x * 8) // 4)) == "x * 2"

    def test_split_recombine(self, ana):
        # (i0*16 + i1) // 16 == i0 when i1 in [0,16)
        i0, i1 = Var("i0"), Var("i1")
        ana.bind(i0, Range(0, 4))
        ana.bind(i1, Range(0, 16))
        assert expr_str(ana.simplify((i0 * 16 + i1) // 16)) == "i0"
        assert expr_str(ana.simplify((i0 * 16 + i1) % 16)) == "i1"

    def test_mod_of_bounded_var(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 8))
        assert expr_str(ana.simplify(x % 16)) == "x"
        assert const_int_value(ana.simplify(x // 16)) == 0

    def test_nested_div(self, ana):
        x = Var("x")
        out = ana.simplify((x // 4) // 8)
        assert expr_str(out) == "x // 32"

    def test_div_mod_identity(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 64))
        expr = (x // 8) * 8 + x % 8
        assert expr_str(ana.simplify(expr)) == "x"

    def test_mod_without_bounds_kept(self, ana):
        x = Var("x")
        out = ana.simplify(x % 7)
        assert isinstance(out, FloorMod)


class TestMinMaxCompare:
    def test_min_resolved_by_bounds(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 4))
        assert expr_str(ana.simplify(Min(x, const(10)))) == "x"
        assert const_int_value(ana.simplify(Max(x, const(10)))) == 10

    def test_unresolvable_min_kept(self, ana):
        x, y = Var("x"), Var("y")
        out = ana.simplify(Min(x, y))
        assert isinstance(out, Min)

    def test_prove_lt(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 16))
        assert ana.can_prove(x < 16)
        assert ana.can_prove(x >= 0)
        assert not ana.can_prove(x < 15)

    def test_prove_eq_by_cancellation(self, ana):
        x, y = Var("x"), Var("y")
        assert ana.can_prove((x + y).equal(y + x))
        assert ana.prove_equal(x * 2 + y, y + x + x)

    def test_select_with_provable_condition(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 4))
        out = ana.simplify(Select(x < 10, x + 1, x + 2))
        assert expr_str(out) == "x + 1"

    def test_and_or_shortcut(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 4))
        from repro.tir import logical_and, logical_or

        assert const_int_value(ana.simplify(logical_and(x < 4, x >= 0))) == 1
        assert const_int_value(ana.simplify(logical_or(x < 0, x >= 4))) == 0


class TestAnalyzer:
    def test_bind_point(self, ana):
        x = Var("x")
        ana.bind(x, 3)
        assert const_int_value(ana.simplify(x + 1)) == 4

    def test_int_set_of_affine(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 10))
        s = ana.int_set(x * 2 + 1)
        assert (s.min_value, s.max_value) == (1, 19)

    def test_const_int(self, ana):
        x = Var("x")
        assert ana.const_int(x - x + 5) == 5
        assert ana.const_int(x) is None

    def test_copy_isolated(self, ana):
        x = Var("x")
        ana.bind(x, Range(0, 4))
        clone = ana.copy()
        y = Var("y")
        clone.bind(y, Range(0, 2))
        assert y not in ana.domains()


# ---------------------------------------------------------------------------
# Property-based soundness: simplify(e) evaluates identically to e.
# ---------------------------------------------------------------------------

_VARS = [Var(n) for n in ("a", "b", "c")]
_DOMS = {_VARS[0]: 16, _VARS[1]: 7, _VARS[2]: 3}


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from(_VARS),
            st.integers(min_value=-8, max_value=8).map(const),
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        sub,
        st.tuples(sub, sub).map(lambda t: t[0] + t[1]),
        st.tuples(sub, sub).map(lambda t: t[0] - t[1]),
        st.tuples(sub, st.integers(min_value=-4, max_value=4)).map(lambda t: t[0] * t[1]),
        st.tuples(sub, st.integers(min_value=1, max_value=9)).map(lambda t: t[0] // t[1]),
        st.tuples(sub, st.integers(min_value=1, max_value=9)).map(lambda t: t[0] % t[1]),
        st.tuples(sub, sub).map(lambda t: Min(t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: Max(t[0], t[1])),
    )


@settings(max_examples=300, deadline=None)
@given(expr=_exprs(3), data=st.data())
def test_simplify_preserves_value(expr, data):
    ana = Analyzer()
    for var, extent in _DOMS.items():
        ana.bind(var, Range(0, extent))
    simplified = ana.simplify(expr)
    env = {
        var: data.draw(st.integers(min_value=0, max_value=extent - 1), label=var.name)
        for var, extent in _DOMS.items()
    }
    assert evaluate_expr(simplified, env) == evaluate_expr(expr, env)


@settings(max_examples=150, deadline=None)
@given(expr=_exprs(3), data=st.data())
def test_can_prove_is_sound(expr, data):
    """If can_prove(e >= k) holds, no concrete evaluation may violate it."""
    ana = Analyzer()
    for var, extent in _DOMS.items():
        ana.bind(var, Range(0, extent))
    k = data.draw(st.integers(min_value=-20, max_value=20), label="k")
    proved = ana.can_prove(expr >= k)
    env = {
        var: data.draw(st.integers(min_value=0, max_value=extent - 1), label=var.name)
        for var, extent in _DOMS.items()
    }
    if proved:
        assert evaluate_expr(expr, env) >= k
