"""Tests for §4.2 tensorization candidate generation (Figure 9 flow)."""

import numpy as np
import pytest

from repro.autotensorize import (
    extract_einsum,
    generate_candidates,
    match_expression_pattern,
    prepare_tensorize,
    propose_mapping,
)
from repro.intrin import get_intrin
from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify
from repro.tir import Cast, IRBuilder

from ..common import build_matmul, build_matmul_relu


def conv2d_func(n=1, h=8, w=8, ci=16, co=32, kh=3, kw=3, dtype="float16"):
    """Figure 9's workload: standard NHWC Conv2D (stride 1)."""
    b = IRBuilder("conv2d")
    A = b.arg_buffer("A", (n, h + kh - 1, w + kw - 1, ci), dtype)
    W = b.arg_buffer("W", (kh, kw, ci, co), dtype)
    C = b.arg_buffer("C", (n, h, w, co), dtype)
    with b.grid(n, h, w, co, kh, kw, ci, names=["n", "i", "j", "f", "r", "s", "c"]) as (
        vn_,
        vi_,
        vj_,
        vf_,
        vr_,
        vs_,
        vc_,
    ):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vh = blk.spatial(h, vi_)
            vw = blk.spatial(w, vj_)
            vco = blk.spatial(co, vf_)
            vrh = blk.reduce(kh, vr_)
            vrw = blk.reduce(kw, vs_)
            vci = blk.reduce(ci, vc_)
            with blk.init():
                b.store(C, (vn, vh, vw, vco), 0.0)
            b.store(
                C,
                (vn, vh, vw, vco),
                C[vn, vh, vw, vco] + A[vn, vh + vrh, vw + vrw, vci] * W[vrh, vrw, vci, vco],
            )
    return b.finish()


def conv2d_ref(args, n=1, h=8, w=8, kh=3, kw=3):
    A, W = args["A"].astype(np.float32), args["W"].astype(np.float32)
    ref = np.zeros((n, h, w, W.shape[3]), dtype=np.float32)
    for r in range(kh):
        for s in range(kw):
            ref += np.einsum("nhwc,cf->nhwf", A[:, r : r + h, s : s + w, :], W[r, s])
    return ref


def batch_matmul_func(b_=4, n=32, m=32, k=32, dtype="float16"):
    b = IRBuilder("bmm")
    A = b.arg_buffer("A", (b_, n, k), dtype)
    B = b.arg_buffer("B", (b_, k, m), dtype)
    C = b.arg_buffer("C", (b_, n, m), dtype)
    with b.grid(b_, n, m, k, names=["b", "i", "j", "r"]) as (vb_, vi_, vj_, vr_):
        with b.block("C") as blk:
            vb = blk.spatial(b_, vb_)
            vi = blk.spatial(n, vi_)
            vj = blk.spatial(m, vj_)
            vr = blk.reduce(k, vr_)
            with blk.init():
                b.store(C, (vb, vi, vj), 0.0)
            b.store(C, (vb, vi, vj), C[vb, vi, vj] + A[vb, vi, vr] * B[vb, vr, vj])
    return b.finish()


def depthwise_func(n=1, h=16, w=16, c=32, kh=3, kw=3, dtype="float16"):
    b = IRBuilder("depthwise")
    A = b.arg_buffer("A", (n, h + kh - 1, w + kw - 1, c), dtype)
    W = b.arg_buffer("W", (kh, kw, c), dtype)
    C = b.arg_buffer("C", (n, h, w, c), dtype)
    with b.grid(n, h, w, c, kh, kw, names=["n", "i", "j", "f", "r", "s"]) as (
        vn_,
        vi_,
        vj_,
        vf_,
        vr_,
        vs_,
    ):
        with b.block("C") as blk:
            vn = blk.spatial(n, vn_)
            vh = blk.spatial(h, vi_)
            vw = blk.spatial(w, vj_)
            vc = blk.spatial(c, vf_)
            vrh = blk.reduce(kh, vr_)
            vrw = blk.reduce(kw, vs_)
            with blk.init():
                b.store(C, (vn, vh, vw, vc), 0.0)
            b.store(
                C,
                (vn, vh, vw, vc),
                C[vn, vh, vw, vc] + A[vn, vh + vrh, vw + vrw, vc] * W[vrh, vrw, vc],
            )
    return b.finish()


class TestPatternMatching:
    def test_matmul_matches_wmma(self):
        sch = Schedule(build_matmul(32, 32, 32, dtype="float16"))
        wp = extract_einsum(sch.block_of(sch.get_block("C")))
        ip = extract_einsum(get_intrin("wmma_16x16x16_f16").desc_block())
        assert match_expression_pattern(wp, ip) == [0, 1]

    def test_fp32_matmul_does_not_match_fp16_intrin(self):
        sch = Schedule(build_matmul(32, 32, 32, dtype="float32"))
        wp = extract_einsum(sch.block_of(sch.get_block("C")))
        ip = extract_einsum(get_intrin("wmma_16x16x16_f16").desc_block())
        assert match_expression_pattern(wp, ip) is None

    def test_int8_matmul_matches_sdot(self):
        b = IRBuilder("qgemm")
        A = b.arg_buffer("A", (16, 16), "int8")
        B = b.arg_buffer("B", (16, 16), "int8")
        C = b.arg_buffer("C", (16, 16), "int32")
        with b.grid(16, 16, 16) as (i, j, k):
            with b.block("C") as blk:
                vi = blk.spatial(16, i)
                vj = blk.spatial(16, j)
                vk = blk.reduce(16, k)
                b.store(
                    C,
                    (vi, vj),
                    C[vi, vj] + Cast("int32", A[vi, vk]) * Cast("int32", B[vk, vj]),
                )
        wp = extract_einsum(b.finish().body.block.body.body.body.body.block)
        ip = extract_einsum(get_intrin("sdot_4x4x4_i8").desc_block())
        assert match_expression_pattern(wp, ip) == [0, 1]

    def test_elementwise_does_not_match(self):
        sch = Schedule(build_matmul_relu(32))
        wp = extract_einsum(sch.block_of(sch.get_block("D")))
        ip = extract_einsum(get_intrin("wmma_16x16x16_f16").desc_block())
        assert match_expression_pattern(wp, ip) is None


class TestMapping:
    def test_conv2d_mapping_groups(self):
        sch = Schedule(conv2d_func())
        wp = extract_einsum(sch.block_of(sch.get_block("C")))
        ip = extract_einsum(get_intrin("wmma_16x16x16_f16").desc_block())
        perm = match_expression_pattern(wp, ip)
        mapping = propose_mapping(wp, ip, perm)
        assert mapping is not None
        # x ← fuse(n, h, w), y ← co, k ← fuse(rh, rw, rc): Figure 9.
        names = [[iv.var.name for iv in g] for g in mapping.groups]
        assert names == [["vn", "vi", "vj"], ["vf"], ["vr", "vs", "vc"]]
        assert mapping.group_extents() == [64, 32, 144]

    def test_batch_matmul_batch_axis_unmapped(self):
        sch = Schedule(batch_matmul_func())
        wp = extract_einsum(sch.block_of(sch.get_block("C")))
        ip = extract_einsum(get_intrin("wmma_16x16x16_f16").desc_block())
        perm = match_expression_pattern(wp, ip)
        mapping = propose_mapping(wp, ip, perm)
        assert mapping is not None
        # b has χ = (1,1,1): it matches no intrinsic iterator and stays
        # outside the tile.
        grouped = {iv.var.name for g in mapping.groups for iv in g}
        assert "vb" not in grouped

    def test_depthwise_has_no_wmma_mapping(self):
        # χ(c) = (1,1,1) and no iterator maps onto the intrinsic's y —
        # depthwise conv cannot use the matmul unit (it stays on the
        # scalar pipeline, matching the paper's DEP behaviour).
        sch = Schedule(depthwise_func())
        cands = generate_candidates(sch, sch.get_block("C"), ["wmma_16x16x16_f16"])
        assert cands == []


class TestPrepare:
    def test_conv2d_prepare_shapes(self):
        sch = Schedule(conv2d_func())
        prep = prepare_tensorize(sch, sch.get_block("C"), "wmma_16x16x16_f16")
        extents = [sch.loop_of(rv).extent.value for rv in prep.tile_loops]
        assert extents == [64, 32, 144]  # 144 = pad(3*3*16 → divisible by 16)
        assert all(e % t == 0 for e, t in zip(extents, prep.tile_shape))
        assert verify(sch.func) == []

    def test_conv2d_prepare_preserves_semantics(self):
        sch = Schedule(conv2d_func())
        prepare_tensorize(sch, sch.get_block("C"), "wmma_16x16x16_f16")
        args = random_args(sch.func)
        run(sch.func, args)
        np.testing.assert_allclose(
            args["C"].astype(np.float32), conv2d_ref(args), atol=0.1
        )

    def test_conv2d_full_tensorize(self):
        sch = Schedule(conv2d_func())
        c = sch.get_block("C")
        prep = prepare_tensorize(sch, c, "wmma_16x16x16_f16")
        i, j, k = prep.tile_loops
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        init = sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "wmma_16x16x16_f16")
        i0, j0 = sch.get_loops(init)[-2:]
        _, i0i = sch.split(i0, [None, 16])
        j0o, j0i = sch.split(j0, [None, 16])
        sch.reorder(i0i, j0o)
        sch.tensorize(i0i, "wmma_fill_16x16_f16")
        args = random_args(sch.func)
        run(sch.func, args)
        np.testing.assert_allclose(
            args["C"].astype(np.float32), conv2d_ref(args), atol=0.1
        )

    def test_batch_matmul_prepare_keeps_batch_loop(self):
        sch = Schedule(batch_matmul_func())
        prep = prepare_tensorize(sch, sch.get_block("C"), "wmma_16x16x16_f16")
        assert len(prep.outer_loops) == 1
        assert sch.loop_of(prep.outer_loops[0]).extent.value == 4
        assert verify(sch.func) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = np.einsum(
            "bnk,bkm->bnm", args["A"].astype(np.float32), args["B"].astype(np.float32)
        )
        np.testing.assert_allclose(args["C"].astype(np.float32), ref, atol=0.1)

    def test_depthwise_prepare_rejected(self):
        sch = Schedule(depthwise_func())
        with pytest.raises(ScheduleError):
            prepare_tensorize(sch, sch.get_block("C"), "wmma_16x16x16_f16")

    def test_trace_replays_preparation(self):
        from repro.tir import structural_equal

        sch = Schedule(conv2d_func())
        prepare_tensorize(sch, sch.get_block("C"), "wmma_16x16x16_f16")
        fresh = Schedule(conv2d_func())
        sch.trace.apply_to(fresh)
        assert structural_equal(sch.func, fresh.func)
