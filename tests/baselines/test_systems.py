"""Tests for the comparison-system analogues."""

import pytest

from repro.baselines import (
    AmosBaseline,
    AnsorBaseline,
    ArmComputeLibrary,
    CutlassLibrary,
    TensorIRSystem,
    TensorRTLibrary,
    TorchLikeFramework,
    UnsupportedWorkload,
)
from repro.frontend import ops
from repro.sim import SimCPU, SimGPU


@pytest.fixture(scope="module")
def gemm():
    return ops.matmul(256, 256, 256)


@pytest.fixture(scope="module")
def qgemm():
    return ops.matmul(128, 128, 128, dtype="int8", acc_dtype="int32")


class TestGpuSystems:
    def test_tensorir_uses_tensor_core_on_gemm(self, gemm):
        r = TensorIRSystem(trials=8).compile_op(gemm, SimGPU(), seed=0)
        assert r.note == "tensor-core"
        assert r.tuning_seconds > 0

    def test_tvm_never_tensorizes(self, gemm):
        r = AnsorBaseline(trials=8).compile_op(gemm, SimGPU(), seed=0)
        assert r.note == "gpu-scalar"

    def test_tensorir_beats_tvm(self):
        # Large enough that compute dominates launch overheads.
        big = ops.matmul(1024, 1024, 1024)
        tir = TensorIRSystem(trials=8).compile_op(big, SimGPU(), seed=0)
        tvm = AnsorBaseline(trials=8).compile_op(big, SimGPU(), seed=0)
        assert tvm.cycles > tir.cycles * 2

    def test_amos_between_tvm_and_tensorir(self, gemm):
        tir = TensorIRSystem(trials=16).compile_op(gemm, SimGPU(), seed=0)
        amos = AmosBaseline().compile_op(gemm, SimGPU(), seed=0)
        tvm = AnsorBaseline(trials=16).compile_op(gemm, SimGPU(), seed=0)
        assert tir.cycles <= amos.cycles <= tvm.cycles

    def test_cutlass_coverage(self, gemm):
        lib = CutlassLibrary()
        assert lib.compile_op(gemm, SimGPU(), seed=0).cycles > 0
        dep = ops.depthwise_conv2d(1, 18, 18, 32, 3, 3)
        with pytest.raises(UnsupportedWorkload):
            lib.compile_op(dep, SimGPU(), seed=0)

    def test_cutlass_rejects_cpu_target(self, gemm):
        with pytest.raises(UnsupportedWorkload):
            CutlassLibrary().compile_op(gemm, SimCPU(), seed=0)

    def test_tensorrt_has_generic_kernels(self):
        dep = ops.depthwise_conv2d(1, 18, 18, 32, 3, 3)
        r = TensorRTLibrary().compile_op(dep, SimGPU(), seed=0)
        assert r.note == "generic-kernel"

    def test_tensorrt_fuses_and_has_no_overhead(self):
        trt = TensorRTLibrary()
        assert trt.fuses_elementwise
        assert trt.op_overhead == 0.0
        assert "ViT" in trt.unsupported_networks

    def test_pytorch_has_overhead_no_fusion(self):
        torch = TorchLikeFramework()
        assert torch.op_overhead > 0
        assert not torch.fuses_elementwise


class TestCpuSystems:
    def test_tensorir_uses_sdot(self, qgemm):
        r = TensorIRSystem(trials=8).compile_op(qgemm, SimCPU(), seed=0)
        assert r.note == "cpu-sdot"

    def test_acl_supported_and_strong(self, qgemm):
        acl = ArmComputeLibrary().compile_op(qgemm, SimCPU(), seed=0)
        tvm = AnsorBaseline(trials=8).compile_op(qgemm, SimCPU(), seed=0)
        assert acl.cycles < tvm.cycles

    def test_acl_rejects_unsupported(self):
        dep = ops.depthwise_conv2d(1, 10, 10, 8, 3, 3, dtype="int8", acc_dtype="int32")
        with pytest.raises(UnsupportedWorkload):
            ArmComputeLibrary().compile_op(dep, SimCPU(), seed=0)

    def test_pytorch_cpu_lacks_sdot(self, qgemm):
        torch = TorchLikeFramework().compile_op(qgemm, SimCPU(), seed=0)
        tir = TensorIRSystem(trials=8).compile_op(qgemm, SimCPU(), seed=0)
        assert torch.note == "no-sdot"
        assert torch.cycles > tir.cycles
