"""Shared IR construction helpers for the test suite."""

from __future__ import annotations

from repro.tir import IRBuilder, PrimFunc, call


def build_matmul(n: int = 64, m: int = 64, k: int = 64, dtype: str = "float32") -> PrimFunc:
    """C[i, j] = sum_k A[i, k] * B[k, j] as a single reduction block."""
    b = IRBuilder("matmul")
    A = b.arg_buffer("A", (n, k), dtype)
    B = b.arg_buffer("B", (k, m), dtype)
    C = b.arg_buffer("C", (n, m), dtype)
    with b.grid(n, m, k) as (i, j, kk):
        with b.block("C") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(m, j)
            vk = blk.reduce(k, kk)
            with blk.init():
                b.store(C, (vi, vj), 0.0)
            b.store(C, (vi, vj), C[vi, vj] + A[vi, vk] * B[vk, vj])
    return b.finish()


def build_elementwise_chain(n: int = 64) -> PrimFunc:
    """B = A + 1; C = exp(B) — the paper's Figure 4 program."""
    b = IRBuilder("fuse_add_exp")
    A = b.arg_buffer("A", (n, n), "float32")
    C = b.arg_buffer("C", (n, n), "float32")
    B = b.alloc_buffer("B", (n, n), "float32")
    with b.grid(n, n) as (i, j):
        with b.block("B") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            b.store(B, (vi, vj), A[vi, vj] + 1.0)
    with b.grid(n, n) as (i, j):
        with b.block("C") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            b.store(C, (vi, vj), call("exp", B[vi, vj]))
    return b.finish()


def build_matmul_relu(n: int = 64, dtype: str = "float32") -> PrimFunc:
    """The running example of Figure 8: matmul followed by RELU."""
    b = IRBuilder("matmul_relu")
    A = b.arg_buffer("A", (n, n), dtype)
    B = b.arg_buffer("B", (n, n), dtype)
    D = b.arg_buffer("D", (n, n), dtype)
    C = b.alloc_buffer("C", (n, n), dtype)
    with b.grid(n, n, n) as (i, j, k):
        with b.block("C") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            vk = blk.reduce(n, k)
            with blk.init():
                b.store(C, (vi, vj), 0.0)
            b.store(C, (vi, vj), C[vi, vj] + A[vi, vk] * B[vk, vj])
    with b.grid(n, n) as (i, j):
        with b.block("D") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            from repro.tir import max_expr

            b.store(D, (vi, vj), max_expr(C[vi, vj], 0.0))
    return b.finish()
