"""Shared test fixtures.

The memoization caches (``repro.cache``) are process-global by design;
left alone they would leak warmth between tests — a tune() in one test
makes an identical tune() in another test nearly free, which breaks
wall-clock accounting assertions and hides cold-path regressions.
Every test starts cold instead.
"""

import pytest

from repro import cache as repro_cache


@pytest.fixture(autouse=True)
def _cold_caches():
    repro_cache.clear_all()
    yield
