"""Tests for the typed diagnostics engine (error codes, spans, lint)."""
