"""The error-code registry: bands, stability, lookup."""

import pytest

from repro.diagnostics import all_codes, code_info, family_of, register_code


class TestRegistry:
    def test_families_by_band(self):
        assert family_of("TIR000") == "generic"
        assert family_of("TIR103") == "loop-nest"
        assert family_of("TIR202") == "producer-consumer"
        assert family_of("TIR305") == "threading"
        assert family_of("TIR401") == "primitive-precondition"

    def test_section_3_3_codes_registered(self):
        codes = {info.code for info in all_codes()}
        # One code per §3.3 loop-nest / producer-consumer / threading check.
        for code in (
            "TIR101", "TIR102", "TIR103", "TIR104", "TIR105", "TIR106",
            "TIR201", "TIR202", "TIR203",
            "TIR301", "TIR302", "TIR303", "TIR304", "TIR305", "TIR306",
            "TIR307", "TIR351", "TIR352",
        ):
            assert code in codes, code

    def test_every_primitive_has_a_code(self):
        codes = {info.code for info in all_codes()}
        for code in (
            "TIR401", "TIR402", "TIR403", "TIR404", "TIR405", "TIR406",
            "TIR410", "TIR411", "TIR412", "TIR413",
            "TIR420", "TIR421", "TIR422",
            "TIR430", "TIR431", "TIR440", "TIR441", "TIR450",
            "TIR460", "TIR461", "TIR470",
        ):
            assert code in codes, code

    def test_code_info_lookup(self):
        info = code_info("TIR103")
        assert info.family == "loop-nest"
        assert "quasi-affine" in info.title
        assert str(info) == "TIR103"
        # Unregistered codes resolve generically rather than raising.
        assert code_info("TIR999").title == "unregistered"

    def test_reregistration_must_agree(self):
        register_code("TIR101", "loop does not start at zero")  # idempotent
        with pytest.raises(ValueError, match="already registered"):
            register_code("TIR101", "something else entirely")
