"""Diagnostic objects, span rendering, the DiagnosticContext sink and
the unified DiagnosticError hierarchy (including the legacy string
shim on VerificationError)."""

import warnings

import pytest

import repro
from repro.diagnostics import (
    Diagnostic,
    DiagnosticContext,
    DiagnosticError,
    Severity,
    tagged,
)
from repro.schedule import ScheduleError, VerificationError, verify
from repro.tir import IRBuilder, script, script_with_spans

from ..common import build_matmul


def _oob_func():
    b = IRBuilder("oob")
    A = b.arg_buffer("A", (40, 1), "float32")
    with b.grid(16) as i:
        with b.block("oob") as blk:
            v1 = blk.spatial(16, i + 8)
            b.store(A, (v1, 0), 1.0)
    return b.finish()


class TestDiagnostic:
    def test_str_is_legacy_message(self):
        diag = Diagnostic("TIR105", "oob: binding leaves domain", block="oob")
        assert str(diag) == "oob: binding leaves domain"
        assert "leaves domain" in diag  # __contains__ for substring probes
        assert diag == "oob: binding leaves domain"  # __eq__ against str

    def test_structured_accessors(self):
        diag = Diagnostic("TIR105", "msg")
        assert diag.family == "loop-nest"
        assert "domain" in diag.title
        assert diag.severity is Severity.ERROR

    def test_render_without_location_is_one_line(self):
        diag = Diagnostic("TIR400", "split: bad factors")
        assert diag.render() == "error[TIR400]: split: bad factors"


class TestSpanRendering:
    def test_script_with_spans_covers_script_lines(self):
        func = build_matmul(16, 16, 16)
        text, spans = script_with_spans(func)
        assert text == script(func)
        n_lines = len(text.splitlines())
        assert spans  # statements were located
        for start, end in spans.values():
            assert 1 <= start <= end <= n_lines

    def test_verify_diagnostic_renders_span(self):
        diags = verify(_oob_func())
        assert len(diags) == 1
        rendered = diags[0].render()
        # Compiler-style report: header, location arrow, caret underline.
        assert rendered.startswith("error[TIR105]: ")
        assert "-->" in rendered
        assert "^" in rendered
        start, end = diags[0].span()
        assert 1 <= start <= end

    def test_rendered_excerpt_quotes_the_failing_statement(self):
        diags = verify(_oob_func())
        rendered = diags[0].render()
        assert "block('oob')" in rendered


class TestDiagnosticContext:
    def test_emit_and_counts(self):
        ctx = DiagnosticContext()
        ctx.emit("TIR101", "a")
        ctx.emit("TIR101", "b")
        ctx.emit("TIR202", "c", severity=Severity.WARNING)
        assert len(ctx) == 3
        assert ctx.counts_by_code() == {"TIR101": 2, "TIR202": 1}
        assert [str(d) for d in ctx] == ["a", "b", "c"]
        assert len(ctx.errors) == 2  # the warning is not an error
        assert not ctx.ok()

    def test_ok_when_only_warnings(self):
        ctx = DiagnosticContext()
        ctx.emit("TIR000", "heads up", severity=Severity.WARNING)
        assert ctx.ok()

    def test_raise_if_error(self):
        ctx = DiagnosticContext()
        ctx.raise_if_error()  # no-op when clean
        ctx.emit("TIR105", "bad binding")
        with pytest.raises(DiagnosticError) as exc_info:
            ctx.raise_if_error()
        assert exc_info.value.codes == ["TIR105"]

    def test_verify_accumulates_into_shared_context(self):
        ctx = DiagnosticContext()
        first = verify(_oob_func(), ctx=ctx)
        second = verify(build_matmul(8, 8, 8), ctx=ctx)
        assert [d.code for d in first] == ["TIR105"]
        assert second == []  # only the new run's findings are returned
        assert ctx.counts_by_code() == {"TIR105": 1}


class TestErrorHierarchy:
    def test_schedule_and_verification_errors_share_base(self):
        assert issubclass(ScheduleError, DiagnosticError)
        assert issubclass(VerificationError, DiagnosticError)
        # One except clause now catches both.
        for exc in (ScheduleError("x"), VerificationError([Diagnostic("TIR105", "y")])):
            assert isinstance(exc, DiagnosticError)

    def test_top_level_exports(self):
        for name in ("Diagnostic", "DiagnosticContext", "DiagnosticError",
                     "Severity", "verify"):
            assert hasattr(repro, name), name
        assert repro.Diagnostic is Diagnostic

    def test_str_joins_diagnostics(self):
        err = DiagnosticError([Diagnostic("TIR101", "a"), Diagnostic("TIR102", "b")])
        assert str(err) == "a; b"
        assert err.codes == ["TIR101", "TIR102"]

    def test_retag_preserves_specific_codes(self):
        err = DiagnosticError(["generic problem", Diagnostic("TIR105", "specific")])
        err.retag("TIR401")
        assert err.codes == ["TIR401", "TIR105"]

    def test_tagged_decorator(self):
        @tagged("TIR402")
        def primitive():
            raise ScheduleError("loops are not perfectly nested")

        with pytest.raises(ScheduleError) as exc_info:
            primitive()
        assert exc_info.value.codes == ["TIR402"]


class TestLegacyStringShim:
    def test_verification_error_from_joined_string_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            err = VerificationError("problem one; problem two")
        # The old round-trip behaviour is preserved.
        assert str(err) == "problem one; problem two"
        assert err.problems == ["problem one", "problem two"]
        assert err.codes == ["TIR000", "TIR000"]

    def test_verification_error_from_diagnostics_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            err = VerificationError([Diagnostic("TIR106", "bad reduction")])
        assert err.codes == ["TIR106"]

    def test_schedule_error_strings_stay_first_class(self):
        # ScheduleError("msg") is the supported raise idiom inside
        # primitives, not a deprecated path: no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            err = ScheduleError("split: bad factors")
        assert str(err) == "split: bad factors"
        assert err.codes == ["TIR400"]
