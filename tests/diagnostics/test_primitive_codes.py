"""TIR4xx: every schedule primitive rejects bad input with its own
stable code, and the Schedule records the failure in its diagnostics
context while rolling the program back."""

import pytest

from repro.schedule import Schedule, ScheduleError

from ..common import build_matmul, build_elementwise_chain


@pytest.fixture
def sch():
    return Schedule(build_matmul(64, 64, 64))


def _raise_code(sch, fn):
    with pytest.raises(ScheduleError) as exc_info:
        fn()
    return exc_info.value.diagnostics[0].code


class TestPrimitiveCodes:
    def test_split_tir401(self, sch):
        i, _, _ = sch.get_loops(sch.get_block("C"))
        code = _raise_code(sch, lambda: sch.split(i, [3, 5]))
        assert code == "TIR401"

    def test_fuse_tir402(self, sch):
        i, _, k = sch.get_loops(sch.get_block("C"))
        assert _raise_code(sch, lambda: sch.fuse(i, k)) == "TIR402"

    def test_reorder_tir403(self, sch):
        i, _, _ = sch.get_loops(sch.get_block("C"))
        assert _raise_code(sch, lambda: sch.reorder(i, i)) == "TIR403"

    def test_bind_tir405(self, sch):
        i, _, _ = sch.get_loops(sch.get_block("C"))
        assert _raise_code(sch, lambda: sch.bind(i, "bogusIdx.q")) == "TIR405"

    def test_compute_at_tir410(self, sch):
        c = sch.get_block("C")
        _, _, k = sch.get_loops(c)
        assert _raise_code(sch, lambda: sch.compute_at(c, k)) == "TIR410"

    def test_compute_inline_tir412(self, sch):
        # The sole block writes an output buffer: not inlinable.
        c = sch.get_block("C")
        assert _raise_code(sch, lambda: sch.compute_inline(c)) == "TIR412"

    def test_decompose_reduction_tir430(self):
        sch = Schedule(build_elementwise_chain(16))
        b = sch.get_block("B")  # spatial-only block, nothing to decompose
        i, _ = sch.get_loops(b)
        assert _raise_code(sch, lambda: sch.decompose_reduction(b, i)) == "TIR430"

    def test_tensorize_tir441(self, sch):
        i, _, _ = sch.get_loops(sch.get_block("C"))
        code = _raise_code(sch, lambda: sch.tensorize(i, "wmma_16x16x16_f16"))
        assert code == "TIR441"


class TestScheduleDiagnosticsContext:
    def test_failed_primitive_recorded_and_rolled_back(self, sch):
        before = sch.show()
        i, _, _ = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.split(i, [3, 5])
        assert sch.show() == before  # transactional rollback
        assert sch.diagnostics.counts_by_code() == {"TIR401": 1}
        # The recorded diagnostic knows which function it was raised on.
        assert all(d.func is not None for d in sch.diagnostics)

    def test_failures_accumulate(self, sch):
        i, j, k = sch.get_loops(sch.get_block("C"))
        for fn in (
            lambda: sch.split(i, [3, 5]),
            lambda: sch.fuse(i, k),
            lambda: sch.reorder(j, j),
        ):
            with pytest.raises(ScheduleError):
                fn()
        assert sch.diagnostics.counts_by_code() == {
            "TIR401": 1,
            "TIR402": 1,
            "TIR403": 1,
        }

    def test_successful_schedule_stays_clean(self, sch):
        i, _, _ = sch.get_loops(sch.get_block("C"))
        sch.split(i, [None, 8])
        assert len(sch.diagnostics) == 0
