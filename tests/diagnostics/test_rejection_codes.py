"""Rejection accounting: the evolutionary search groups invalid
candidates by diagnostic code, the Telemetry folds the counters, and
the SessionReport exposes them as ``invalid_by_code``."""

import json
import re

import pytest

from repro import Telemetry, TuneConfig, TuningSession, tune
from repro.frontend import ops
from repro.meta import SearchStats
from repro.sim import SimGPU

_CODE = re.compile(r"^TIR\d{3}$")


class TestSearchStats:
    def test_rejected_by_code_sums_to_rejections(self):
        result = tune(ops.matmul(128, 128, 128), SimGPU(), TuneConfig(trials=6, seed=0))
        stats = result.stats
        by_code = dict(stats.rejected_by_code)
        assert all(_CODE.match(code) for code in by_code)
        assert sum(by_code.values()) == stats.invalid_rejected + stats.apply_failed

    def test_merge_adds_counters(self):
        a, b = SearchStats(), SearchStats()
        a.rejected_by_code["TIR105"] = 2
        b.rejected_by_code["TIR105"] = 1
        b.rejected_by_code["TIR401"] = 4
        a.merge(b)
        assert dict(a.rejected_by_code) == {"TIR105": 3, "TIR401": 4}

    def test_telemetry_absorbs_mapping_fields(self):
        stats = SearchStats()
        stats.rejected_by_code["TIR105"] = 3
        stats.rejected_by_code["TIR401"] = 1
        telemetry = Telemetry()
        telemetry.absorb_stats(stats)
        telemetry.absorb_stats(stats)
        counters = telemetry.counters_by_prefix("rejected_by_code")
        assert counters == {"TIR105": 6, "TIR401": 2}


class TestSessionReport:
    @pytest.fixture(scope="class")
    def report(self):
        session = TuningSession(SimGPU(), TuneConfig(trials=6, seed=0), workers=2)
        session.add(ops.matmul(128, 128, 128), name="a")
        session.add(ops.matmul(64, 64, 256), name="b")
        return session.run()

    def test_invalid_by_code_present_and_typed(self, report):
        assert all(_CODE.match(code) for code in report.invalid_by_code)
        assert all(
            isinstance(count, int) and count > 0
            for count in report.invalid_by_code.values()
        )

    def test_counts_match_rejection_counters(self, report):
        counters = report.telemetry["counters"]
        rejected = counters.get("invalid_rejected", 0) + counters.get("apply_failed", 0)
        assert sum(report.invalid_by_code.values()) == rejected
        # This config does reject candidates — the breakdown is not
        # vacuously empty.
        assert rejected > 0

    def test_json_round_trip(self, report):
        loaded = json.loads(report.dumps())
        assert loaded["invalid_by_code"] == report.invalid_by_code
