"""tirlint over the shipped examples (every example must stay valid)
and over synthetic good/bad files exercising discovery and the CLI."""

import glob
import json
import os
import textwrap

import pytest

from repro.diagnostics import lint_path, lint_trace
from repro.diagnostics.__main__ import main as tirlint_main
from repro.schedule import Schedule

from ..common import build_matmul

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
EXAMPLES = sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.py")))


@pytest.mark.parametrize("path", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES])
def test_examples_lint_clean(path):
    """Every example exposes at least one discoverable workload and all
    of them pass the §3.3 battery — a regressing example fails tier-1."""
    report = lint_path(path)
    assert report.failures == {}
    assert len(report.functions) >= 1, "no PrimFunc discovered"
    assert report.ok, report.render()


def test_examples_exist():
    assert len(EXAMPLES) >= 4


BAD_FILE = textwrap.dedent(
    """
    from repro.tir import IRBuilder

    def build_oob():
        b = IRBuilder("oob")
        A = b.arg_buffer("A", (40, 1), "float32")
        with b.grid(16) as i:
            with b.block("oob") as blk:
                v1 = blk.spatial(16, i + 8)
                b.store(A, (v1, 0), 1.0)
        return b.finish()
    """
)


class TestLintPath:
    def test_flags_invalid_function(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(BAD_FILE)
        report = lint_path(str(path))
        assert not report.ok
        assert report.counts_by_code() == {"TIR105": 1}
        assert "build_oob" in report.functions
        rendered = report.render()
        assert "error[TIR105]" in rendered and "FAILED" in rendered

    def test_broken_builder_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def build_boom():\n    raise RuntimeError('nope')\n")
        report = lint_path(str(path))
        assert not report.ok
        assert "build_boom" in report.failures
        assert "RuntimeError" in report.failures["build_boom"]

    def test_import_failure_reported(self, tmp_path):
        path = tmp_path / "unimportable.py"
        path.write_text("import does_not_exist_anywhere\n")
        report = lint_path(str(path))
        assert "<module>" in report.failures


class TestLintTrace:
    def test_replays_and_validates(self):
        sch = Schedule(build_matmul(32, 32, 32))
        i, _, _ = sch.get_loops(sch.get_block("C"))
        sch.split(i, [None, 8])
        assert lint_trace(sch.trace, build_matmul(32, 32, 32)) == []

    def test_replay_precondition_failure_is_tir4xx(self):
        sch = Schedule(build_matmul(64, 64, 64), seed=0)
        i, _, _ = sch.get_loops(sch.get_block("C"))
        sch.sample_perfect_tile(i, 2)
        # Replaying onto a 48-extent loop: the recorded tiling decision
        # no longer factors the extent, exactly as the search sees it.
        diags = lint_trace(sch.trace, build_matmul(48, 64, 64))
        assert [d.code for d in diags] == ["TIR400"]
        assert "decision product" in str(diags[0])


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text(
            "from repro.tir import IRBuilder\n"
            "def build_ok():\n"
            "    b = IRBuilder('ok')\n"
            "    A = b.arg_buffer('A', (4,), 'float32')\n"
            "    with b.grid(4) as i:\n"
            "        with b.block('A') as blk:\n"
            "            vi = blk.spatial(4, i)\n"
            "            b.store(A, (vi,), 1.0)\n"
            "    return b.finish()\n"
        )
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FILE)
        unimportable = tmp_path / "unimportable.py"
        unimportable.write_text("import does_not_exist_anywhere\n")

        assert tirlint_main([str(good)]) == 0
        assert tirlint_main([str(bad)]) == 1
        assert tirlint_main([str(unimportable)]) == 2
        out = capsys.readouterr().out
        assert "OK" in out and "FAILED" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_FILE)
        assert tirlint_main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload
        assert entry["ok"] is False
        assert entry["counts_by_code"] == {"TIR105": 1}
        (diag,) = entry["diagnostics"]["build_oob"]
        assert diag["code"] == "TIR105"
        assert diag["span"] is not None
