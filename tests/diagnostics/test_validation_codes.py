"""One test per §3.3 check: each failure carries its stable error code
and a printer-rendered source span, and the legacy string/boolean views
(`str(diag)`, `is_valid`, `assert_valid`) are unchanged."""

import pytest

from repro.schedule import Schedule, VerificationError, assert_valid, is_valid, verify
from repro.schedule.sref import find_blocks
from repro.sim import SimGPU
from repro.tir import ForKind, IRBuilder, IntImm, Range, Var

from ..common import build_matmul


def _loops_of(func):
    """The serial loop spine under the root block, outermost first."""
    out, node = [], func.body.block.body
    while hasattr(node, "loop_var"):
        out.append(node)
        node = node.body
    return out


def _realize_of(func, name="C"):
    for realize in find_blocks(func.body):
        if realize is not func.body and realize.block.name_hint == name:
            return realize
    raise AssertionError(f"no block {name!r}")


def _codes(diags):
    return [d.code for d in diags]


class TestLoopNestCodes:
    def test_tir101_nonzero_loop_min(self):
        func = build_matmul(16, 16, 16)
        _loops_of(func)[0].min = IntImm(1)
        diags = verify(func)
        assert _codes(diags) == ["TIR101"]
        assert "min != 0" in str(diags[0])

    def test_tir102_symbolic_extent(self):
        func = build_matmul(16, 16, 16)
        _loops_of(func)[1].extent = Var("n", "int32")
        assert _codes(verify(func)) == ["TIR102"]

    def test_tir103_dependent_bindings(self):
        b = IRBuilder("bad")
        A = b.arg_buffer("A", (16, 32), "float32")
        with b.grid(16) as i:
            with b.block("bad") as blk:
                v1 = blk.spatial(16, i)
                v2 = blk.spatial(32, i * 2)
                b.store(A, (v1, v2), 1.0)
        diags = verify(b.finish())
        assert _codes(diags) == ["TIR103"]
        assert "quasi-affine" in str(diags[0])

    def test_tir104_symbolic_domain(self):
        func = build_matmul(16, 16, 16)
        _realize_of(func).block.iter_vars[0].dom = Range(0, Var("n", "int32"))
        assert "TIR104" in _codes(verify(func))

    def test_tir105_out_of_domain_binding(self):
        b = IRBuilder("oob")
        A = b.arg_buffer("A", (40, 1), "float32")
        with b.grid(16) as i:
            with b.block("oob") as blk:
                v1 = blk.spatial(16, i + 8)  # range [8, 24) outside [0, 16)
                b.store(A, (v1, 0), 1.0)
        diags = verify(b.finish())
        assert _codes(diags) == ["TIR105"]
        assert "domain" in str(diags[0])

    def test_tir106_parallel_reduction(self):
        func = build_matmul(16, 16, 16)
        _loops_of(func)[2].kind = ForKind.PARALLEL  # the k loop
        diags = verify(func)
        assert _codes(diags) == ["TIR106"]
        assert diags[0].block == "C"


class TestProducerConsumerCodes:
    def test_tir201_no_producer(self):
        b = IRBuilder("noprod")
        C = b.arg_buffer("C", (16,), "float32")
        B = b.alloc_buffer("B", (16,), "float32")
        with b.grid(16) as i:
            with b.block("C") as blk:
                vi = blk.spatial(16, i)
                b.store(C, (vi,), B[vi] * 2.0)
        assert _codes(verify(b.finish())) == ["TIR201"]

    def test_tir202_partial_coverage(self):
        b = IRBuilder("uncovered")
        A = b.arg_buffer("A", (16,), "float32")
        C = b.arg_buffer("C", (16,), "float32")
        B = b.alloc_buffer("B", (16,), "float32")
        with b.grid(8) as i:
            with b.block("B") as blk:
                vi = blk.spatial(8, i)
                b.store(B, (vi,), A[vi] + 1.0)
        with b.grid(16) as i:
            with b.block("C") as blk:
                vi = blk.spatial(16, i)
                b.store(C, (vi,), B[vi] * 2.0)
        diags = verify(b.finish())
        assert _codes(diags) == ["TIR202"]
        assert "cover" in str(diags[0])

    def test_tir203_read_before_write(self):
        b = IRBuilder("order")
        A = b.arg_buffer("A", (16,), "float32")
        C = b.arg_buffer("C", (16,), "float32")
        B = b.alloc_buffer("B", (16,), "float32")
        with b.grid(16) as i:
            with b.block("C") as blk:
                vi = blk.spatial(16, i)
                b.store(C, (vi,), B[vi] * 2.0)
        with b.grid(16) as i:
            with b.block("B") as blk:
                vi = blk.spatial(16, i)
                b.store(B, (vi,), A[vi] + 1.0)
        assert "TIR203" in _codes(verify(b.finish()))


class TestThreadingCodes:
    def test_tir301_symbolic_thread_extent(self):
        sch = Schedule(build_matmul(32, 16, 16))
        i, _, _ = sch.get_loops(sch.get_block("C"))
        sch.bind(i, "threadIdx.x")
        _loops_of(sch.func)[0].extent = Var("n", "int32")
        assert "TIR301" in _codes(verify(sch.func, SimGPU()))

    def test_tir302_inconsistent_extents(self):
        b = IRBuilder("two_tx")
        A = b.arg_buffer("A", (2, 32), "float32")
        B = b.arg_buffer("B", (2, 24), "float32")
        with b.serial(2, "o") as o:
            with b.thread_binding(32, "threadIdx.x", "t1") as t1:
                with b.block("w1") as blk:
                    vo = blk.spatial(2, o)
                    v1 = blk.spatial(32, t1)
                    b.store(A, (vo, v1), 1.0)
            with b.thread_binding(24, "threadIdx.x", "t2") as t2:
                with b.block("w2") as blk:
                    vo = blk.spatial(2, o, name="vo2")
                    v2 = blk.spatial(24, t2)
                    b.store(B, (vo, v2), 1.0)
        assert "TIR302" in _codes(verify(b.finish(), SimGPU()))

    def test_tir303_tir304_launch_limits(self):
        sch = Schedule(build_matmul(4096, 16, 16))
        i, _, _ = sch.get_loops(sch.get_block("C"))
        sch.bind(i, "threadIdx.x")
        codes = _codes(verify(sch.func, SimGPU()))
        assert "TIR303" in codes  # per-axis extent limit
        assert "TIR304" in codes  # threads-per-block limit

    def test_tir305_shared_memory_capacity(self):
        sch = Schedule(build_matmul(512, 512, 512, dtype="float32"))
        sch.cache_read(sch.get_block("C"), 0, "shared")  # 1MB > 48KB
        assert "TIR305" in _codes(verify(sch.func, SimGPU()))

    def test_tir306_warp_intrinsic_under_thread_x(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        c = sch.get_block("C")
        sch.cache_read(c, 0, "wmma.matrix_a")
        sch.cache_read(c, 1, "wmma.matrix_b")
        sch.cache_write(c, 0, "wmma.accumulator")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "wmma_16x16x16_f16")
        sch.bind(io, "threadIdx.x")
        assert "TIR306" in _codes(verify(sch.func, SimGPU()))

    def test_tir307_missing_cooperative_fetch(self):
        b = IRBuilder("coop")
        C = b.arg_buffer("C", (32,), "float32")
        S = b.alloc_buffer("S", (32,), "float32", scope="shared")
        with b.thread_binding(32, "threadIdx.x") as t:
            with b.block("C") as blk:
                vi = blk.spatial(32, t)
                b.store(C, (vi,), S[vi])
        assert "TIR307" in _codes(verify(b.finish(), SimGPU()))


class TestIntrinsicScopeCodes:
    def test_tir351_operand_missing(self):
        func = build_matmul(16, 16, 16)
        _realize_of(func).block.annotations["tensorize"] = "wmma_16x16x16_f16"
        codes = _codes(verify(func))
        assert codes == ["TIR351"] * 3  # A, B and C operands all unmapped

    def test_tir352_operand_wrong_scope(self):
        func = build_matmul(16, 16, 16)
        block = _realize_of(func).block
        block.annotations["tensorize"] = "wmma_16x16x16_f16"
        block.annotations["tensorize_operands"] = {"A": "A", "B": "B", "C": "C"}
        codes = _codes(verify(func))
        assert codes == ["TIR352"] * 3  # all operands left in global scope


class TestLegacyViewsUnchanged:
    """`verify` grew types, but the seed API contracts still hold."""

    def test_valid_program_is_empty_list(self):
        assert verify(build_matmul(16, 16, 16)) == []

    def test_string_probing_still_works(self):
        func = build_matmul(16, 16, 16)
        _loops_of(func)[0].min = IntImm(1)
        problems = verify(func)
        # The pre-diagnostics idiom: substring checks over problem strings.
        assert any("min != 0" in p for p in problems)

    def test_is_valid(self):
        assert is_valid(build_matmul(8, 8, 8))
        func = build_matmul(16, 16, 16)
        _loops_of(func)[0].min = IntImm(1)
        assert not is_valid(func)

    def test_assert_valid_raises_with_diagnostics(self):
        func = build_matmul(16, 16, 16)
        _loops_of(func)[2].kind = ForKind.PARALLEL
        assert_valid(build_matmul(8, 8, 8))  # no raise on valid input
        with pytest.raises(VerificationError) as exc_info:
            assert_valid(func)
        err = exc_info.value
        assert [d.code for d in err.diagnostics] == ["TIR106"]
        assert err.problems == [str(d) for d in err.diagnostics]
        assert "reduction iterator" in str(err)
