"""Graph construction, fusion planning, lowering and numerical identity."""

import numpy as np
import pytest

from repro.frontend import ops
from repro.frontend.fuse import (
    compose_group,
    fuse_graph,
    graph_latency,
    lower_group,
    random_graph_inputs,
    run_graph,
    run_plan,
)
from repro.frontend.graph import Graph, GraphError
from repro.frontend.networks import (
    bert_base_graph,
    bert_large_graph,
    mobilenet_v2_graph,
    resnet50_graph,
    vit_graph,
)
from repro.runtime import interpret
from repro.schedule import verify
from repro.tir import IRBuilder


def _mini_matmul_chain():
    """matmul -> bias_add -> relu: the canonical epilogue chain."""
    g = Graph("mm_chain")
    x = g.input("x", (8, 8), "float32")
    t = g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)
    t = g.op("bias", ops.bias_add((8, 8), "float32"), t)
    t = g.op("relu", ops.elementwise((8, 8), "relu", "float32"), t)
    return g


def _shape_changing_elementwise(n: int, m: int):
    """An op *claiming* to be elementwise whose output shape differs —
    the legality check must reject it, not trust the attr."""
    b = IRBuilder("halve")
    A = b.arg_buffer("A", (n, m), "float32")
    C = b.arg_buffer("C", (n, m // 2), "float32")
    with b.grid(n, m // 2) as (i, j):
        with b.block("halve") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(m // 2, j)
            b.store(C, (vi, vj), A[vi, vj])
    return b.finish().with_attrs(op="elementwise")


def _reducing_consumer(n: int, m: int):
    """A non-elementwise, non-anchor consumer (row reduction)."""
    b = IRBuilder("row_sum")
    A = b.arg_buffer("A", (n, m), "float32")
    C = b.arg_buffer("C", (n,), "float32")
    with b.grid(n, m) as (i, j):
        with b.block("row_sum") as blk:
            vi = blk.spatial(n, i)
            vj = blk.reduce(m, j)
            with blk.init():
                b.store(C, (vi,), 0.0)
            b.store(C, (vi,), C[vi] + A[vi, vj])
    return b.finish().with_attrs(op="reduce")


class TestGraphConstruction:
    def test_wiring_and_auto_weights(self):
        g = _mini_matmul_chain()
        assert len(g) == 3
        mm = g.ops[0]
        # matmul's B operand was auto-created as a weight input
        assert [t.name for t in mm.inputs] == ["x", "mm.B"]
        assert g.ops[1].inputs[1].name == "bias.bias"
        assert [t.name for t in g.outputs()] == ["relu_out"]

    def test_arity_mismatch_raises_tir604(self):
        g = Graph("bad")
        x = g.input("x", (8, 8), "float32")
        y = g.input("y", (8, 8), "float32")
        z = g.input("z", (8, 8), "float32")
        with pytest.raises(GraphError) as exc_info:
            g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x, y, z)
        assert exc_info.value.diagnostics[0].code == "TIR604"

    def test_shape_mismatch_raises_tir604(self):
        g = Graph("bad")
        x = g.input("x", (4, 4), "float32")
        with pytest.raises(GraphError) as exc_info:
            g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)
        assert exc_info.value.diagnostics[0].code == "TIR604"

    def test_dtype_mismatch_raises_tir604(self):
        g = Graph("bad")
        x = g.input("x", (8, 8), "float16")
        with pytest.raises(GraphError):
            g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)

    def test_name_uniquification(self):
        g = Graph("dup")
        x = g.input("x", (8, 8), "float32")
        a = g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)
        b = g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), a)
        assert g.ops[0].name == "mm" and g.ops[1].name == "mm#2"
        assert b.name == "mm#2_out"


class TestFusionPlan:
    def test_epilogue_chain_fuses(self):
        g = _mini_matmul_chain()
        plan = fuse_graph(g)
        assert plan.num_groups == 1
        group = plan.groups[0]
        assert group.anchor.name == "mm"
        assert [m.name for m in group.members] == ["mm", "bias", "relu"]
        assert group.task_name == "mm+bias_add+relu"

    def test_fuse_false_gives_singletons(self):
        g = _mini_matmul_chain()
        plan = fuse_graph(g, fuse=False)
        assert plan.num_groups == 3
        assert not any(grp.is_fused for grp in plan.groups)

    def test_prologue_claims_producer_chain(self):
        g = Graph("prologue")
        x = g.input("x", (8, 8), "float32")
        t = g.op("cast", ops.cast_to((8, 8), "float32", "float32", name="c32"), x)
        g.op("ln", ops.layer_norm(8, 8, "float32"), t)
        plan = fuse_graph(g)
        assert plan.num_groups == 1
        assert [m.name for m in plan.groups[0].members] == ["cast", "ln"]

    def test_multi_consumer_boundary_records_tir603(self):
        g = Graph("resid")
        x = g.input("x", (8, 8), "float32")
        t = g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)
        u = g.op("relu", ops.elementwise((8, 8), "relu", "float32"), t)
        g.op("res", ops.add((8, 8), "float32"), u, t)  # t has 2 consumers
        plan = fuse_graph(g)
        assert "TIR603" in plan.rejection_codes()
        assert not plan.groups[0].is_fused

    def test_reducing_consumer_records_tir601(self):
        g = Graph("reduce")
        x = g.input("x", (8, 8), "float32")
        t = g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)
        g.op("rowsum", _reducing_consumer(8, 8), t)
        plan = fuse_graph(g)
        assert plan.rejection_codes() == ["TIR601"]
        assert all(len(grp.members) == 1 for grp in plan.groups)

    def test_shape_mismatched_epilogue_records_tir602(self):
        g = Graph("shapes")
        x = g.input("x", (8, 8), "float32")
        t = g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)
        g.op("halve", _shape_changing_elementwise(8, 8), t)
        plan = fuse_graph(g)
        assert plan.rejection_codes() == ["TIR602"]
        assert all(len(grp.members) == 1 for grp in plan.groups)

    def test_identical_groups_share_workload_key(self):
        from repro.meta.database import workload_key
        from repro.sim import SimGPU

        g = Graph("twice")
        x = g.input("x", (8, 8), "float16")
        for _ in range(2):
            t = g.op("mm", ops.matmul(8, 8, 8), x)
            x = g.op("bias", ops.bias_add((8, 8)), t)
        plan = fuse_graph(g)
        assert plan.num_groups == 2
        target = SimGPU()
        keys = {workload_key(lower_group(grp), target) for grp in plan.groups}
        assert len(keys) == 1


class TestLowering:
    def test_compose_canonical_names(self):
        g = _mini_matmul_chain()
        plan = fuse_graph(g)
        fused = compose_group(plan.groups[0])
        assert fused.name == "fused_matmul_bias_add_relu"
        params = [fused.buffer_map[p].name for p in fused.params]
        assert params == ["in0", "in1", "in2", "out0"]
        assert str(fused.attrs["ops"]) == "matmul+elementwise+elementwise"

    def test_lowered_group_is_single_nest_and_valid(self):
        g = _mini_matmul_chain()
        plan = fuse_graph(g)
        fused = lower_group(plan.groups[0])
        assert verify(fused) == []
        from repro.schedule import Schedule

        sch = Schedule(fused, record_trace=False)
        # bias and relu were inlined: matmul block + one epilogue block
        assert len(sch.get_blocks()) == 2

    def test_singleton_group_lowering_is_identity(self):
        g = Graph("single")
        x = g.input("x", (8, 8), "float32")
        g.op("mm", ops.matmul(8, 8, 8, dtype="float32"), x)
        plan = fuse_graph(g)
        assert lower_group(plan.groups[0]) is g.ops[0].func


def _assert_plan_matches_oracle(g, seed=0):
    """Compiled fused execution == interpreted unfused execution, for
    every tensor escaping a fusion group."""
    plan = fuse_graph(g)
    inputs = random_graph_inputs(g, seed=seed)
    oracle = run_graph(g, inputs, run_func=interpret)
    fused_env = run_plan(plan, inputs)
    checked = 0
    for group in plan.groups:
        for t in group.outputs:
            a, b = fused_env[t.name], oracle[t.name]
            if a.dtype.kind == "f":
                np.testing.assert_allclose(
                    a.astype(np.float64), b.astype(np.float64),
                    rtol=2e-2, atol=2e-2, err_msg=t.name,
                )
            else:
                np.testing.assert_array_equal(a, b, err_msg=t.name)
            checked += 1
    assert checked >= len(plan.groups)
    return plan


MINI_GRAPHS = {
    "resnet50": lambda dtype, acc: resnet50_graph(
        dtype=dtype, acc=acc, stages=((4, 4, 16, 2),), stem=(8, 4, 8)
    ),
    "mobilenet_v2": lambda dtype, acc: mobilenet_v2_graph(
        dtype=dtype, acc=acc, stages=((8, 4, 8, 4, 2, 1),), stem_c=4
    ),
    "bert_large": lambda dtype, acc: bert_large_graph(
        dtype=dtype, acc=acc, seq=8, hidden=8, heads=2, layers_n=1
    ),
    "vit": lambda dtype, acc: vit_graph(
        dtype=dtype, acc=acc, seq=8, hidden=8, heads=2, layers_n=1,
        patch_dim=8, classes=8
    ),
}


class TestNumericalIdentity:
    """Every fused group computes exactly what its constituents compute."""

    @pytest.mark.parametrize("name", sorted(MINI_GRAPHS))
    def test_gpu_flavor_fused_matches_unfused(self, name):
        g = MINI_GRAPHS[name]("float32", None)
        plan = _assert_plan_matches_oracle(g)
        assert any(grp.is_fused for grp in plan.groups)

    @pytest.mark.parametrize("name", ["resnet50", "bert_large"])
    def test_int8_flavor_fused_matches_unfused(self, name):
        g = MINI_GRAPHS[name]("int8", "int32")
        _assert_plan_matches_oracle(g)

    def test_attention_mini_bert_base(self):
        g = bert_base_graph(seq=8, hidden=8, heads=2, layers_n=1)
        _assert_plan_matches_oracle(g)


class TestGraphLatency:
    def test_fused_plan_pays_fewer_dispatches(self):
        g = _mini_matmul_chain()
        fused = fuse_graph(g)
        unfused = fuse_graph(g, fuse=False)
        lat = lambda grp: 1e-3  # noqa: E731
        t_fused = graph_latency(fused, lat, per_op_overhead=1e-3)
        t_unfused = graph_latency(unfused, lat, per_op_overhead=1e-3)
        assert t_fused == pytest.approx(2e-3)
        assert t_unfused == pytest.approx(6e-3)


class TestFullNetworkGraphs:
    """The default network graphs build, fuse, and cut task counts."""

    @pytest.mark.parametrize(
        "builder",
        [resnet50_graph, mobilenet_v2_graph, bert_large_graph, vit_graph,
         bert_base_graph],
        ids=["resnet50", "mobilenet_v2", "bert_large", "vit", "bert_base"],
    )
    def test_task_count_reduction_at_least_20pct(self, builder):
        from repro.meta.database import workload_key
        from repro.sim import SimGPU

        g = builder()
        plan = fuse_graph(g)
        target = SimGPU()
        unfused = {workload_key(op.func, target) for op in g.ops}
        fused = {workload_key(compose_group(grp), target) for grp in plan.groups}
        assert len(fused) <= 0.8 * len(unfused), (len(fused), len(unfused))


class TestFusedTensorize:
    def test_sdot_sketch_applies_to_fused_int8_group(self):
        # Regression: composing an epilogue renames the accumulator to an
        # internal alloc (t0), whose name used to flip the reduction to
        # `a*b + t0` under simplification and break the purely structural
        # sdot intrinsic match.  The matcher is commutativity-aware now.
        from repro.meta.sketch import CpuSdotSketch
        from repro.schedule import Schedule

        g = Graph("qmm")
        x = g.input("x", (64, 64), "int8")
        t = g.op("mm", ops.matmul(64, 64, 64, dtype="int8", acc_dtype="int32"), x)
        g.op("requant", ops.requantize((64, 64), "int32", "int8"), t)
        plan = fuse_graph(g)
        assert plan.groups[0].is_fused
        fused = lower_group(plan.groups[0])

        sketch = CpuSdotSketch()
        sch = Schedule(fused, seed=0)
        assert sketch.applicable(sch)
        sketch.apply(sch)
        assert "sdot_4x4x4_i8" in str(sch.func)
        assert verify(sch.func) == []
