"""Correctness tests for the operator library against NumPy references."""

import numpy as np
import pytest

from repro.frontend import ops
from repro.runtime import alloc_args, random_args, run
from repro.schedule import verify


def _check(func, ref_fn, out="C", atol=0.05, rtol=1e-3):
    assert verify(func) == []
    args = random_args(func)
    run(func, args)
    np.testing.assert_allclose(
        args[out].astype(np.float64), ref_fn(args), atol=atol, rtol=rtol
    )
    return args


class TestMatmuls:
    def test_matmul(self):
        func = ops.matmul(16, 24, 32, dtype="float32")
        _check(func, lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64))

    def test_matmul_int8_acc_int32(self):
        func = ops.matmul(16, 16, 64, dtype="int8", acc_dtype="int32")
        args = random_args(func)
        run(func, args)
        ref = args["A"].astype(np.int32) @ args["B"].astype(np.int32)
        np.testing.assert_array_equal(args["C"], ref)

    def test_batch_matmul(self):
        func = ops.batch_matmul(3, 8, 8, 8, dtype="float32")
        _check(
            func,
            lambda a: np.einsum(
                "bnk,bkm->bnm", a["A"].astype(np.float64), a["B"].astype(np.float64)
            ),
        )


class TestConvs:
    def test_conv1d(self):
        func = ops.conv1d(1, 18, 4, 8, 3, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            out = np.zeros((1, 16, 8))
            for r in range(3):
                out += np.einsum("nlc,cf->nlf", A[:, r : r + 16], W[r])
            return out

        _check(func, ref)

    def test_conv1d_strided(self):
        func = ops.conv1d(1, 17, 4, 8, 3, stride=2, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            out_l = (17 - 3) // 2 + 1
            out = np.zeros((1, out_l, 8))
            for i in range(out_l):
                out[:, i] = np.einsum("nkc,kcf->nf", A[:, 2 * i : 2 * i + 3], W)
            return out

        _check(func, ref)

    def test_conv2d_stride2(self):
        func = ops.conv2d(1, 15, 15, 4, 8, 3, 3, stride=2, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            oh = (15 - 3) // 2 + 1
            out = np.zeros((1, oh, oh, 8))
            for i in range(oh):
                for j in range(oh):
                    patch = A[:, 2 * i : 2 * i + 3, 2 * j : 2 * j + 3, :]
                    out[:, i, j] = np.tensordot(patch, W, axes=([1, 2, 3], [0, 1, 2]))
            return out

        _check(func, ref)

    def test_conv2d_dilated(self):
        func = ops.conv2d(1, 14, 14, 4, 8, 3, 3, dilation=2, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            oh = 14 - 2 * 2
            out = np.zeros((1, oh, oh, 8))
            for i in range(oh):
                for j in range(oh):
                    patch = A[:, i : i + 5 : 2, j : j + 5 : 2, :]
                    out[:, i, j] = np.tensordot(patch, W, axes=([1, 2, 3], [0, 1, 2]))
            return out

        _check(func, ref)

    def test_conv3d(self):
        func = ops.conv3d(1, 6, 6, 6, 2, 4, 3, 3, 3, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            out = np.zeros((1, 4, 4, 4, 4))
            for q in range(3):
                for r in range(3):
                    for s in range(3):
                        out += np.einsum(
                            "ndhwc,cf->ndhwf",
                            A[:, q : q + 4, r : r + 4, s : s + 4, :],
                            W[q, r, s],
                        )
            return out

        _check(func, ref)

    def test_depthwise(self):
        func = ops.depthwise_conv2d(1, 10, 10, 6, 3, 3, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            out = np.zeros((1, 8, 8, 6))
            for r in range(3):
                for s in range(3):
                    out += A[:, r : r + 8, s : s + 8, :] * W[r, s]
            return out

        _check(func, ref)

    def test_group_conv(self):
        func = ops.group_conv2d(1, 10, 10, 8, 8, 3, 3, groups=2, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            out = np.zeros((1, 8, 8, 2, 4))
            for g in range(2):
                for r in range(3):
                    for s in range(3):
                        out[:, :, :, g, :] += np.einsum(
                            "nhwc,cf->nhwf", A[:, r : r + 8, s : s + 8, g], W[r, s, g]
                        )
            return out

        _check(func, ref)

    def test_transposed_conv_matches_scatter(self):
        func = ops.conv2d_transposed(1, 5, 5, 3, 4, 4, 4, stride=2, dtype="float32")

        def ref(a):
            A, W = a["A"].astype(np.float64), a["W"].astype(np.float64)
            h = w = 5
            kh = kw = 4
            s = 2
            oh = (h - 1) * s + kh
            out = np.zeros((1, oh, oh, 4))
            for i in range(h):
                for j in range(w):
                    for r in range(kh):
                        for t in range(kw):
                            out[:, i * s + r, j * s + t, :] += np.einsum(
                                "nc,cf->nf", A[:, i, j, :], W[r, t]
                            )
            return out

        _check(func, ref)


class TestElementwiseAndNorms:
    def test_relu(self):
        func = ops.elementwise_unary((64,), "relu", "float32")
        _check(func, lambda a: np.maximum(a["A"].astype(np.float64), 0))

    def test_gelu_close_to_reference(self):
        func = ops.elementwise_unary((64,), "gelu", "float32")
        args = random_args(func)
        run(func, args)
        x = args["A"].astype(np.float64)
        import math
        exact = x * 0.5 * (1 + np.vectorize(math.erf)(x / np.sqrt(2)))
        # sigmoid-approximated GELU: loose tolerance.
        np.testing.assert_allclose(args["C"], exact, atol=0.02)

    def test_softmax(self):
        func = ops.softmax(8, 16)

        def ref(a):
            A = a["A"].astype(np.float64)
            e = np.exp(A - A.max(1, keepdims=True))
            return e / e.sum(1, keepdims=True)

        _check(func, ref, atol=1e-5)

    def test_layer_norm(self):
        func = ops.layer_norm(8, 16)

        def ref(a):
            A = a["A"].astype(np.float64)
            mu = A.mean(1, keepdims=True)
            var = A.var(1, keepdims=True)
            return (A - mu) / np.sqrt(var + 1e-5) * a["gamma"] + a["beta"]

        _check(func, ref, atol=1e-4)

    def test_bias_add_relu(self):
        func = ops.bias_add_relu(8, 16, dtype="float32")
        _check(
            func,
            lambda a: np.maximum(a["A"].astype(np.float64) + a["bias"], 0),
        )


class TestWorkloadsAndNetworks:
    def test_all_gpu_workloads_build_and_validate(self):
        from repro.frontend import GPU_WORKLOADS

        for name, fn in GPU_WORKLOADS.items():
            func = fn()
            assert verify(func) == [], name

    def test_all_cpu_workloads_build_and_validate(self):
        from repro.frontend import CPU_WORKLOADS

        for name, fn in CPU_WORKLOADS.items():
            assert verify(fn()) == [], name

    def test_networks_enumerate(self):
        from repro.frontend import cpu_network, gpu_network

        for name in ("ResNet-50", "MobileNet-V2", "BERT-large", "ViT"):
            net = gpu_network(name)
            assert net.total_ops() > 10
        for name in ("ResNet-50", "MobileNet-V2", "BERT-base"):
            net = cpu_network(name)
            assert net.total_ops() > 10

    def test_network_latency_composition(self):
        from repro.frontend import gpu_network, network_latency

        net = gpu_network("BERT-large")
        flat = network_latency(net, lambda layer: 1e-3)
        fused = network_latency(net, lambda layer: 1e-3, fold_fusible=True)
        overhead = network_latency(net, lambda layer: 1e-3, per_op_overhead=1e-3)
        assert fused < flat < overhead

    def test_fuse_elementwise_deprecated_but_equivalent(self):
        from repro.frontend import gpu_network, network_latency

        net = gpu_network("BERT-large")
        new = network_latency(net, lambda layer: 1e-3, fold_fusible=True)
        with pytest.warns(DeprecationWarning, match="fold_fusible"):
            old = network_latency(net, lambda layer: 1e-3, fuse_elementwise=True)
        assert old == new

    def test_unique_layers_dedup_by_workload_identity(self):
        from functools import partial

        from repro.frontend.graph import LayerSpec, NetworkSpec

        # Two names, one workload: identical builders must merge, with
        # counts accumulating onto the first occurrence.
        same = partial(ops.matmul, 8, 8, 8, dtype="float32")
        other = partial(ops.matmul, 8, 8, 4, dtype="float32")
        net = NetworkSpec(
            "dups",
            [
                LayerSpec("a", same, count=2),
                LayerSpec("b", other, count=1),
                LayerSpec("c", same, count=3),
            ],
        )
        uniq = net.unique_layers()
        assert [layer.name for layer in uniq] == ["a", "b"]
        assert uniq[0].count == 5
        assert net.total_ops() == 6
