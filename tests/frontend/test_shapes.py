"""Tests for the shape-bucketing layer (``repro.frontend.shapes``).

The contract: a :class:`BucketSpec` collapses every shape in a bucket
onto one representative workload, so ``workload_key`` produces one task
per bucket; shapes outside every declared bucket degrade gracefully to
their own degenerate bucket (diagnostic ``TIR703``).
"""

import pytest

from repro import cache
from repro.diagnostics import DiagnosticContext
from repro.frontend import ops
from repro.frontend.shapes import (
    BucketedWorkload,
    BucketSpec,
    ShapeBucket,
    canonicalize,
    next_pow2,
    rebuild,
    shape_args_of,
)
from repro.meta import workload_key
from repro.sim import SimGPU


class TestShapeBucket:
    def test_pow2_representative(self):
        bucket = ShapeBucket("n")
        assert bucket.representative(1) == 1
        assert bucket.representative(5) == 8
        assert bucket.representative(8) == 8
        assert bucket.representative(33) == 64

    def test_next_pow2(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1
        assert next_pow2(7) == 8
        assert next_pow2(64) == 64
        assert next_pow2(65) == 128

    def test_pow2_max_size_caps_coverage(self):
        bucket = ShapeBucket("n", max_size=64)
        assert bucket.covers(64)
        assert not bucket.covers(65)
        # Outside the cap, a size is its own degenerate bucket.
        assert bucket.representative(100) == 100

    def test_declared_boundaries(self):
        bucket = ShapeBucket("seq", boundaries=(8, 64, 512))
        assert bucket.representative(3) == 8
        assert bucket.representative(8) == 8
        assert bucket.representative(9) == 64
        assert bucket.representative(512) == 512
        assert not bucket.covers(513)
        assert bucket.representative(513) == 513

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            ShapeBucket("n", boundaries=())
        with pytest.raises(ValueError):
            ShapeBucket("n", boundaries=(8, 8))
        with pytest.raises(ValueError):
            ShapeBucket("n", boundaries=(64, 8))
        with pytest.raises(ValueError):
            ShapeBucket("n", boundaries=(0, 8))

    def test_token_is_stable(self):
        assert ShapeBucket("n").token() == "n:pow2"
        assert ShapeBucket("n", max_size=64).token() == "n:pow2<=64"
        assert ShapeBucket("n", boundaries=(8, 64)).token() == "n:8,64"


class TestBucketSpec:
    def test_pow2_constructor(self):
        spec = BucketSpec.pow2("n", "m")
        assert {b.dim for b in spec.buckets} == {"n", "m"}
        assert spec.bucket_for("n") is not None
        assert spec.bucket_for("k") is None

    def test_of_constructor(self):
        spec = BucketSpec.of(n=(8, 64, 512))
        assert spec.bucket_for("n").boundaries == (8, 64, 512)

    def test_token_joins_buckets(self):
        assert BucketSpec.pow2("n", "m").token() == "n:pow2;m:pow2"


class TestCanonicalize:
    def test_collapses_workload_keys_within_bucket(self):
        spec = BucketSpec.pow2("n")
        target = SimGPU()
        keys = {
            workload_key(
                canonicalize(ops.matmul(n, 32, 32), spec).representative, target
            )
            for n in (33, 40, 56, 64)
        }
        assert len(keys) == 1  # all of (32, 64] shares rep 64

    def test_dims_records_size_and_representative(self):
        bw = canonicalize(ops.matmul(56, 32, 32), BucketSpec.pow2("n"))
        assert bw.dims["n"] == (56, 64)
        assert bw.bucketed
        assert bw.representative.attrs["shape_args"]["n"] == 64
        # Non-bucketed dims are untouched.
        assert bw.representative.attrs["shape_args"]["m"] == 32

    def test_representative_at_boundary_is_identity(self):
        bw = canonicalize(ops.matmul(64, 32, 32), BucketSpec.pow2("n"))
        assert not bw.bucketed
        assert bw.representative is bw.concrete

    def test_none_spec_is_identity(self):
        func = ops.matmul(56, 32, 32)
        bw = canonicalize(func, None)
        assert isinstance(bw, BucketedWorkload)
        assert bw.representative is func and not bw.bucketed

    def test_non_parametric_func_is_identity(self):
        func = ops.matmul(56, 32, 32).with_attrs(builder=None, shape_args=None)
        bw = canonicalize(func, BucketSpec.pow2("n"))
        assert bw.representative is func and not bw.bucketed

    def test_out_of_bucket_emits_tir703(self):
        ctx = DiagnosticContext()
        spec = BucketSpec.of(n=(8,))
        bw = canonicalize(ops.matmul(56, 32, 32), spec, ctx=ctx)
        assert not bw.bucketed
        assert bw.dims["n"] == (56, 56)
        assert ctx.counts_by_code().get("TIR703") == 1

    def test_derived_extents_recomputed_by_builder(self):
        # conv2d output height is (h - kh) // stride + 1: the rebuilt
        # representative must carry the recomputed value, not a patched
        # one.
        bw = canonicalize(
            ops.conv2d(3, 6, 6, 4, 4, 3, 3, dtype="float32"),
            BucketSpec.pow2("n"),
        )
        assert bw.dims["n"] == (3, 4)
        rep_args = bw.representative.attrs["shape_args"]
        assert rep_args["n"] == 4 and rep_args["h"] == 6

    def test_rebuild_is_memoized(self):
        if not cache.caches_enabled():
            pytest.skip("hot-path caches disabled")
        spec = BucketSpec.pow2("n")
        first = canonicalize(ops.matmul(56, 32, 32), spec)
        second = canonicalize(ops.matmul(56, 32, 32), spec)
        assert second.representative is first.representative


class TestParametricBuilders:
    def test_shape_args_recorded(self):
        args = shape_args_of(ops.matmul(56, 32, 48))
        assert args["n"] == 56 and args["m"] == 32 and args["k"] == 48

    def test_shape_args_none_for_hand_built(self):
        func = ops.matmul(8, 8, 8).with_attrs(builder=None, shape_args=None)
        assert shape_args_of(func) is None

    def test_rebuild_overrides_one_dim(self):
        rebuilt = rebuild(ops.matmul(56, 32, 32), n=64)
        args = shape_args_of(rebuilt)
        assert args["n"] == 64 and args["m"] == 32

    def test_rebuild_rejects_non_parametric(self):
        func = ops.matmul(8, 8, 8).with_attrs(builder=None, shape_args=None)
        with pytest.raises(ValueError, match="shape-parametric"):
            rebuild(func, n=16)

    def test_attrs_do_not_perturb_workload_key(self):
        target = SimGPU()
        plain = ops.matmul(32, 32, 32).with_attrs(builder=None, shape_args=None)
        assert workload_key(ops.matmul(32, 32, 32), target) == workload_key(
            plain, target
        )
