"""Tests for the tensor-expression layer (§3.4: high-level operators →
TensorIR)."""

import numpy as np
import pytest

from repro.frontend import te
from repro.runtime import random_args, run
from repro.schedule import Schedule, verify
from repro.tir import IterVar


class TestTE:
    def _matmul(self, n=16, m=16, k=16, dtype="float32"):
        A = te.placeholder((n, k), dtype, "A")
        B = te.placeholder((k, m), dtype, "B")
        r = te.reduce_axis(k, "k")
        C = te.compute(
            (n, m), lambda i, j: te.sum(A[i, r] * B[r, j], [r]), dtype=dtype, name="C"
        )
        return te.build_func([A, B, C], name="matmul")

    def test_matmul_structure(self):
        func = self._matmul()
        assert verify(func) == []
        sch = Schedule(func)
        block = sch.block_of(sch.get_block("C"))
        kinds = [iv.kind for iv in block.iter_vars]
        assert kinds == [IterVar.SPATIAL, IterVar.SPATIAL, IterVar.REDUCE]
        assert block.init is not None

    def test_matmul_numerics(self):
        func = self._matmul()
        args = random_args(func)
        run(func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-5)

    def test_elementwise_chain_with_intermediate(self):
        A = te.placeholder((32,), "float32", "A")
        B = te.compute((32,), lambda i: A[i] + 1.0, name="B")
        C = te.compute((32,), lambda i: B[i] * 2.0, name="C")
        func = te.build_func([A, B, C], name="chain")
        # B is an intermediate: allocated, not a parameter.
        assert [buf.name for buf in func.buffers] == ["A", "C"]
        assert [b.name for b in func.body.block.alloc_buffers] == ["B"]
        args = random_args(func)
        run(func, args)
        np.testing.assert_allclose(args["C"], (args["A"] + 1.0) * 2.0, rtol=1e-5)

    def test_te_program_is_schedulable_and_tensorizable(self):
        func = self._matmul(64, 64, 64, dtype="float16")
        sch = Schedule(func)
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "wmma_16x16x16_f16")
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
        np.testing.assert_allclose(args["C"].astype(np.float32), ref, atol=0.1)

    def test_conv_style_indices(self):
        A = te.placeholder((18, 4), "float32", "A")
        W = te.placeholder((3, 4, 8), "float32", "W")
        r = te.reduce_axis(3, "r")
        c = te.reduce_axis(4, "c")
        C = te.compute(
            (16, 8),
            lambda x, f: te.sum(A[x + r, c] * W[r, c, f], [r, c]),
            name="C",
        )
        func = te.build_func([A, W, C], name="conv1d")
        assert verify(func) == []
        args = random_args(func)
        run(func, args)
        ref = np.zeros((16, 8))
        for rr in range(3):
            ref += np.einsum("xc,cf->xf", args["A"][rr : rr + 16].astype(np.float64), args["W"][rr].astype(np.float64))
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-5)

    def test_unbound_tensor_indexing_rejected(self):
        A = te.placeholder((4,), "float32", "A")
        with pytest.raises(RuntimeError):
            A[0]

    def test_no_compute_rejected(self):
        A = te.placeholder((4,), "float32", "A")
        with pytest.raises(ValueError):
            te.build_func([A])
