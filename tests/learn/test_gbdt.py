"""Tests for the from-scratch gradient-boosted trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import GradientBoostedTrees, RegressionTree


class TestRegressionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert np.mean((pred - y) ** 2) < 1e-6

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.full(30, 2.5)
        tree = RegressionTree().fit(X, y)
        assert np.allclose(tree.predict(X), 2.5)

    def test_depth_zero_is_mean(self):
        X = np.arange(10, dtype=float)[:, None]
        y = np.arange(10, dtype=float)
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())

    def test_picks_informative_feature(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 4))
        y = (X[:, 2] > 0).astype(float) * 10
        tree = RegressionTree(max_depth=1).fit(X, y)
        assert tree.root.feature == 2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))


class TestGBDT:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(X[:, 0]) + X[:, 1] ** 2
        model = GradientBoostedTrees(n_trees=80, learning_rate=0.2, max_depth=3).fit(X, y)
        mse = model.training_error(X, y)
        assert mse < 0.05

    def test_more_trees_monotonically_reduce_training_error(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, size=(200, 3))
        y = X[:, 0] * 3 + X[:, 1] * X[:, 2]
        errors = []
        for n in (1, 5, 20, 60):
            model = GradientBoostedTrees(n_trees=n, learning_rate=0.2).fit(X, y)
            errors.append(model.training_error(X, y))
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_ranks_candidates(self):
        # The cost-model use case: ordering matters more than values.
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 1, size=(300, 5))
        y = 2 * X[:, 0] - X[:, 1]
        model = GradientBoostedTrees(n_trees=50).fit(X, y)
        Xt = rng.uniform(0, 1, size=(50, 5))
        yt = 2 * Xt[:, 0] - Xt[:, 1]
        pred = model.predict(Xt)
        # Spearman-ish check: top-10 prediction overlap with true top-10.
        top_true = set(np.argsort(-yt)[:10])
        top_pred = set(np.argsort(-pred)[:10])
        assert len(top_true & top_pred) >= 5

    def test_single_row_predict(self):
        X = np.arange(20, dtype=float)[:, None]
        y = X[:, 0] * 2
        model = GradientBoostedTrees(n_trees=10).fit(X, y)
        out = model.predict(np.array([5.0]))
        assert out.shape == (1,)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    n=st.integers(min_value=20, max_value=80),
)
def test_boosting_never_increases_training_error(seed, n):
    """Property: each boosting stage (weakly) reduces squared training
    error under least-squares boosting with lr <= 1."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.normal(size=n)
    model = GradientBoostedTrees(n_trees=15, learning_rate=0.5, max_depth=2)
    model.fit(X, y)
    pred = np.full(n, model.base)
    prev_err = np.mean((pred - y) ** 2)
    for tree in model.trees:
        pred = pred + model.learning_rate * tree.predict(X)
        err = np.mean((pred - y) ** 2)
        assert err <= prev_err + 1e-9
        prev_err = err
