"""Tests for the AutoCopy data-movement scheduler (§4.3)."""

import numpy as np
import pytest

from repro.meta.autocopy import (
    own_loops,
    schedule_default_spatial_cpu,
    schedule_default_spatial_gpu,
    schedule_fragment_copy,
    schedule_shared_copy,
)
from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify
from repro.sim import SimCPU, SimGPU
from repro.tir import ForKind

from ..common import build_matmul


class TestSharedCopy:
    def _cached(self, n=128):
        sch = Schedule(build_matmul(n, n, n))
        c = sch.get_block("C")
        copy = sch.cache_read(c, 0, "shared")
        i, j, k = sch.get_loops(c)
        sch.bind(i, "blockIdx.x")
        return sch, copy

    def test_cooperative_fetch_structure(self):
        sch, copy = self._cached(64)  # full-buffer cache must fit shared
        schedule_shared_copy(sch, copy, thread_y=2, thread_x=32, vector_len=4)
        kinds = [sch.loop_of(lp).kind for lp in sch.get_loops(copy)]
        assert ForKind.THREAD_BINDING in kinds
        assert ForKind.VECTORIZED in kinds
        assert verify(sch.func, SimGPU()) == []

    def test_vector_length_rounds_down_to_divisor(self):
        sch, copy = self._cached()
        # 128*128 is divisible by 8; a non-dividing request shrinks.
        schedule_shared_copy(sch, copy, thread_y=1, thread_x=32, vector_len=7)
        vec_loops = [
            lp for lp in sch.get_loops(copy) if sch.loop_of(lp).kind == ForKind.VECTORIZED
        ]
        if vec_loops:
            extent = sch.loop_of(vec_loops[0]).extent.value
            assert (128 * 128) % extent == 0

    def test_copy_still_correct(self):
        sch, copy = self._cached(64)
        schedule_shared_copy(sch, copy, thread_y=1, thread_x=32, vector_len=2)
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-4)


class TestFragmentCopy:
    def test_tensorized_load(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        c = sch.get_block("C")
        frag = sch.cache_read(c, 0, "wmma.matrix_a")
        schedule_fragment_copy(sch, frag, "wmma_load_16x16_f16_a")
        block = sch.block_of(sch.get_child_blocks(frag)[0]) if sch.get_child_blocks(frag) else None
        # the copy block itself became a blockized tensorized op
        blocks = [sch.block_of(rv) for rv in sch.get_blocks()]
        assert any(
            b.annotations.get("tensorize") == "wmma_load_16x16_f16_a" for b in blocks
        )

    def test_non_multiple_rejected(self):
        sch = Schedule(build_matmul(24, 24, 24, dtype="float16"))
        c = sch.get_block("C")
        frag = sch.cache_read(c, 0, "wmma.matrix_a")
        with pytest.raises(ScheduleError):
            schedule_fragment_copy(sch, frag, "wmma_load_16x16_f16_a")


class TestDefaultSpatial:
    def test_gpu_default(self):
        sch = Schedule(build_matmul(64, 64, 64))
        b = sch.get_block("C")
        schedule_default_spatial_gpu(sch, b, threads=128)
        kinds = {sch.loop_of(lp).kind for lp in sch.get_loops(b)}
        assert ForKind.THREAD_BINDING in kinds
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-4)

    def test_cpu_default(self):
        sch = Schedule(build_matmul(64, 64, 64))
        b = sch.get_block("C")
        schedule_default_spatial_cpu(sch, b)
        kinds = {sch.loop_of(lp).kind for lp in sch.get_loops(b)}
        assert ForKind.PARALLEL in kinds
        assert verify(sch.func, SimCPU()) == []

    def test_own_loops_counts_iterators(self):
        sch = Schedule(build_matmul(16, 16, 16))
        b = sch.get_block("C")
        assert len(own_loops(sch, b)) == 3
