"""Cross-shape (§5.2 forced-decision) replay through the database.

A record tuned at a bucket representative must replay at any other
shape in the bucket: ``decision_mode="adapt"`` coerces each stored
decision to the nearest feasible choice at the new extents, and a
sketch constraint that cannot hold at the concrete shape surfaces as
``None`` plus a ``TIR701`` diagnostic — never as a crash or a silently
wrong program.
"""

import numpy as np
import pytest

from repro.diagnostics import DiagnosticContext
from repro.frontend import ops
from repro.frontend.shapes import BucketSpec, canonicalize
from repro.meta import TuneConfig, TuningDatabase, TuningSession, tune
from repro.meta.database import workload_key
from repro.runtime import run as run_program
from repro.runtime.executor import random_args
from repro.runtime.interp import interpret
from repro.schedule.sampling import coerce_categorical, coerce_perfect_tile
from repro.sim import SimGPU

CONFIG = TuneConfig(trials=4, seed=0)


def _conv(n):
    return ops.conv2d(n, 6, 6, 4, 4, 3, 3, dtype="float32")


def _oracle_matches(func, sch, *, fp16):
    args = random_args(func, seed=0)
    oracle = {k: v.copy() for k, v in args.items()}
    interpret(func, oracle)
    got = {k: v.copy() for k, v in args.items()}
    run_program(sch.func, got)
    tol = dict(rtol=2e-2, atol=2e-2) if fp16 else dict(rtol=1e-4, atol=1e-4)
    return all(np.allclose(oracle[k], got[k], **tol) for k in oracle)


class TestCoercion:
    def test_perfect_tile_feasible_decision_reproduced(self):
        # Every factor divides: strict replays are unaffected by the
        # coercion path.
        assert coerce_perfect_tile([4, 2, 4], 32, 3) == [4, 2, 4]

    def test_perfect_tile_non_dividing_factor_shrinks(self):
        # Stored innermost 16 does not divide 24: largest divisor <= 16
        # is 12; the outer factor absorbs the quotient.
        assert coerce_perfect_tile([2, 16], 24, 2) == [2, 12]

    def test_perfect_tile_product_always_matches_extent(self):
        for extent in (7, 12, 24, 56, 100):
            tiles = coerce_perfect_tile([4, 8], extent, 2)
            assert tiles is not None
            assert tiles[0] * tiles[1] == extent

    def test_perfect_tile_respects_max_innermost(self):
        tiles = coerce_perfect_tile([1, 128], 256, 2, max_innermost_factor=64)
        assert tiles[1] <= 64 and tiles[0] * tiles[1] == 256

    def test_perfect_tile_uninterpretable_decision(self):
        assert coerce_perfect_tile("nope", 32, 2) is None
        assert coerce_perfect_tile([4, 8], None, 2) is None
        assert coerce_perfect_tile([4], 32, 2) is None  # wrong arity
        assert coerce_perfect_tile([4, True], 32, 2) is None

    def test_categorical_clamps_into_range(self):
        assert coerce_categorical(5, 3) == 2
        assert coerce_categorical(-1, 3) == 0
        assert coerce_categorical(1, 3) == 1  # in-range is identity

    def test_categorical_uninterpretable(self):
        assert coerce_categorical(1, 0) is None
        assert coerce_categorical("x", 3) is None
        assert coerce_categorical(True, 3) is None


class TestAdaptiveReplay:
    def test_replay_at_smaller_in_bucket_shape(self):
        # Tensor-core matmul: the rep-64 record replays at n=56 (the
        # sketch's pad_einsum re-pads to the intrinsic tile at the new
        # shape) and stays numerically equal to the interpreter.
        target = SimGPU()
        db = TuningDatabase()
        tune(ops.matmul(64, 32, 32), target, CONFIG, database=db)
        ctx = DiagnosticContext()
        bucketed = canonicalize(ops.matmul(56, 32, 32), BucketSpec.pow2("n"))
        sch = db.replay_bucketed(bucketed, target, ctx=ctx)
        assert sch is not None
        assert _oracle_matches(ops.matmul(56, 32, 32), sch, fp16=True)

    def test_degenerate_bucket_replays_strict(self):
        target = SimGPU()
        db = TuningDatabase()
        tune(ops.matmul(64, 32, 32), target, CONFIG, database=db)
        bucketed = canonicalize(ops.matmul(64, 32, 32), BucketSpec.pow2("n"))
        assert not bucketed.bucketed
        sch = db.replay_bucketed(bucketed, target)
        assert sch is not None and sch.adapted_decisions == 0

    def test_adapted_decisions_counted(self):
        # Replaying a gpu-scalar conv record at a different batch forces
        # at least one tile/categorical coercion.
        target = SimGPU()
        db = TuningDatabase()
        tune(_conv(8), target, CONFIG, database=db)
        bucketed = canonicalize(_conv(5), BucketSpec.pow2("n"))
        sch = db.replay_bucketed(bucketed, target)
        assert sch is not None
        assert sch.adapted_decisions > 0
        assert _oracle_matches(_conv(5), sch, fp16=False)

    def test_missing_representative_record_returns_none(self):
        db = TuningDatabase()
        bucketed = canonicalize(_conv(5), BucketSpec.pow2("n"))
        assert db.replay_bucketed(bucketed, SimGPU()) is None

    def test_strict_replay_across_shapes_emits_tir701(self):
        # Without adapt mode, rep-8 tile decisions do not divide n=5:
        # the ScheduleError is captured as a typed diagnostic, not
        # raised.
        target = SimGPU()
        db = TuningDatabase()
        tune(_conv(8), target, CONFIG, database=db)
        entry = db.get(workload_key(_conv(8), target))
        ctx = DiagnosticContext()
        sch = db.replay_entry(_conv(5), entry, decision_mode="strict", ctx=ctx)
        assert sch is None
        assert ctx.counts_by_code().get("TIR701", 0) >= 1

    def test_infeasible_adapt_replay_emits_tir701(self):
        # n=3 from the rep-4 conv record is infeasible even under adapt
        # at this budget (the gpu-scalar sketch's thread-count floor):
        # replay must degrade to None + TIR701, never crash.
        target = SimGPU()
        db = TuningDatabase()
        tune(_conv(4), target, CONFIG, database=db)
        ctx = DiagnosticContext()
        bucketed = canonicalize(_conv(3), BucketSpec.pow2("n"))
        sch = db.replay_bucketed(bucketed, target, ctx=ctx)
        if sch is not None:
            pytest.skip("decision vector happens to adapt at this budget")
        assert ctx.counts_by_code().get("TIR701", 0) >= 1


class TestSessionBuckets:
    def test_in_bucket_tasks_collapse_to_one_search(self):
        target = SimGPU()
        session = TuningSession(
            target, CONFIG, buckets=BucketSpec.pow2("n")
        )
        session.add(ops.matmul(64, 32, 32), name="rep")
        session.add(ops.matmul(56, 32, 32), name="in-bucket")
        session.add(ops.matmul(48, 32, 32), name="in-bucket-2")
        report = session.run()
        statuses = sorted(t.status for t in report.tasks)
        assert statuses.count("searched") == 1
        assert report.totals["tasks_bucket_replayed"] >= 2.0
        assert report.totals["tasks_bucket_fallback"] == 0.0
        by_name = {t.name: t for t in report.tasks}
        assert by_name["in-bucket"].measured == 0

    def test_infeasible_replay_falls_back_with_tir702(self):
        target = SimGPU()
        session = TuningSession(
            target, CONFIG, buckets=BucketSpec.pow2("n")
        )
        session.add(_conv(4), name="rep")
        session.add(_conv(3), name="fallback")
        report = session.run()
        if report.totals["tasks_bucket_fallback"] == 0.0:
            pytest.skip("decision vector happens to adapt at this budget")
        assert report.totals["tasks_bucket_fallback"] == 1.0
        assert session.diagnostics.counts_by_code().get("TIR702", 0) >= 1
        # The fallback task still produced a working program.
        by_name = {t.name: t for t in report.tasks}
        assert by_name["fallback"].cycles > 0

    def test_no_buckets_keeps_exact_semantics(self):
        target = SimGPU()
        session = TuningSession(target, CONFIG)
        session.add(ops.matmul(64, 32, 32), name="a")
        session.add(ops.matmul(56, 32, 32), name="b")
        report = session.run()
        assert sorted(t.status for t in report.tasks).count("searched") == 2
        assert "tasks_bucket_replayed" not in report.totals
