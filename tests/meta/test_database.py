"""Tests for the tuning-record database (§5.2's search-record caching)."""

import os

import pytest

from repro.frontend import ops
from repro.meta import TuneConfig, tune
from repro.meta.database import DatabaseEntry, TuningDatabase, workload_key
from repro.sim import SimCPU, SimGPU, estimate


@pytest.fixture(scope="module")
def tuned():
    func = ops.matmul(128, 128, 128)
    result = tune(func, SimGPU(), TuneConfig(trials=8, seed=0))
    return func, result


class TestDatabase:
    def test_workload_key_stability(self):
        t = SimGPU()
        k1 = workload_key(ops.matmul(64, 64, 64), t)
        k2 = workload_key(ops.matmul(64, 64, 64), t)
        assert k1 == k2

    def test_workload_key_discriminates(self):
        t = SimGPU()
        assert workload_key(ops.matmul(64, 64, 64), t) != workload_key(
            ops.matmul(64, 64, 128), t
        )
        assert workload_key(ops.matmul(64, 64, 64), t) != workload_key(
            ops.matmul(64, 64, 64), SimCPU()
        )

    def test_record_and_replay_exact(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        sch = db.replay(ops.matmul(128, 128, 128), SimGPU())
        assert sch is not None
        assert estimate(sch.func, SimGPU()).cycles == pytest.approx(result.best_cycles)

    def test_lookup_returns_typed_entry(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        entry = db.lookup(func, SimGPU())
        assert isinstance(entry, DatabaseEntry)
        assert entry.key == workload_key(func, SimGPU())
        assert entry.workload == func.name
        assert entry.sketch == result.best_sketch
        assert entry.decisions == result.best_decisions
        assert entry.provenance == "search"
        assert db.lookup_key(entry.key) is entry

    def test_record_keeps_best(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, 100.0)
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, 200.0)
        assert db.lookup(func, SimGPU()).cycles == 100.0

    def test_persistence_roundtrip(self, tuned, tmp_path):
        func, result = tuned
        path = os.path.join(tmp_path, "db.json")
        db = TuningDatabase(path)
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        db.save()
        db2 = TuningDatabase(path)
        assert len(db2) == 1
        assert db2.lookup(func, SimGPU()).sketch == result.best_sketch
        assert db2.lookup(func, SimGPU()).provenance == "search"

    def test_miss_returns_none(self):
        db = TuningDatabase()
        assert db.lookup(ops.matmul(32, 32, 32), SimGPU()) is None
        assert db.replay(ops.matmul(32, 32, 32), SimGPU()) is None
