"""Tests for the tuning-record database (§5.2's search-record caching).

The database surface was redesigned around one typed protocol —
``get`` / ``put`` / ``evict`` / ``keys`` — with the historical lookup
spellings kept as deprecation shims; this module covers the protocol on
the in-memory backend plus the shims' warning behaviour.
"""

import os

import pytest

from repro.frontend import ops
from repro.meta import TuneConfig, tune
from repro.meta.database import (
    Database,
    DatabaseEntry,
    TuningDatabase,
    workload_key,
)
from repro.sim import SimCPU, SimGPU, estimate


@pytest.fixture(scope="module")
def tuned():
    func = ops.matmul(128, 128, 128)
    result = tune(func, SimGPU(), TuneConfig(trials=8, seed=0))
    return func, result


class TestDatabase:
    def test_workload_key_stability(self):
        t = SimGPU()
        k1 = workload_key(ops.matmul(64, 64, 64), t)
        k2 = workload_key(ops.matmul(64, 64, 64), t)
        assert k1 == k2

    def test_workload_key_discriminates(self):
        t = SimGPU()
        assert workload_key(ops.matmul(64, 64, 64), t) != workload_key(
            ops.matmul(64, 64, 128), t
        )
        assert workload_key(ops.matmul(64, 64, 64), t) != workload_key(
            ops.matmul(64, 64, 64), SimCPU()
        )

    def test_record_and_replay_exact(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        sch = db.replay(ops.matmul(128, 128, 128), SimGPU())
        assert sch is not None
        assert estimate(sch.func, SimGPU()).cycles == pytest.approx(result.best_cycles)

    def test_get_returns_typed_entry(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        key = workload_key(func, SimGPU())
        entry = db.get(key)
        assert isinstance(entry, DatabaseEntry)
        assert entry.key == key
        assert entry.workload == func.name
        assert entry.sketch == result.best_sketch
        assert entry.decisions == result.best_decisions
        assert entry.provenance == "search"
        assert entry.structural_hash is not None

    def test_protocol_primitives(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        assert isinstance(db, Database)
        key = workload_key(func, SimGPU())
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        assert db.keys() == [key]
        assert key in db
        assert len(db) == 1
        entry = db.get(key)
        assert db.evict(key) is True
        assert db.get(key) is None
        assert db.evict(key) is False
        db.put(entry)
        assert db.get(key) is entry

    def test_put_keeps_best(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        key = workload_key(func, SimGPU())
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, 100.0)
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, 200.0)
        assert db.get(key).cycles == 100.0

    def test_lookup_shims_warn_and_delegate(self, tuned):
        func, result = tuned
        db = TuningDatabase()
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        key = workload_key(func, SimGPU())
        with pytest.deprecated_call():
            entry = db.lookup(func, SimGPU())
        assert entry is db.get(key)
        with pytest.deprecated_call():
            assert db.lookup_key(key) is entry
        with pytest.deprecated_call():
            assert db._entries is not None

    def test_persistence_roundtrip(self, tuned, tmp_path):
        func, result = tuned
        path = os.path.join(tmp_path, "db.json")
        db = TuningDatabase(path)
        db.record(func, SimGPU(), result.best_sketch, result.best_decisions, result.best_cycles)
        db.save()
        db2 = TuningDatabase(path)
        assert len(db2) == 1
        key = workload_key(func, SimGPU())
        assert db2.get(key).sketch == result.best_sketch
        assert db2.get(key).provenance == "search"

    def test_miss_returns_none(self):
        db = TuningDatabase()
        assert db.get(workload_key(ops.matmul(32, 32, 32), SimGPU())) is None
        assert db.replay(ops.matmul(32, 32, 32), SimGPU()) is None
