"""Tests for the pluggable candidate-evaluation backends (§4.4 seam).

The load-bearing property is the determinism contract: every backend —
serial, threads, processes, at any worker count — must find the same
programs, produce the same statistics (modulo worker-slot accounting)
and reject the same candidates for the same reasons.  The matrix test
asserts exactly that; the rest covers the protocol surface, the pickle
boundary, and the graceful-degradation paths.
"""

import pickle

import pytest

from repro import cache as repro_cache
from repro.meta import (
    CandidateSpec,
    Evaluator,
    ProcessEvaluator,
    SerialEvaluator,
    TensorCoreSketch,
    ThreadEvaluator,
    Telemetry,
    TuneConfig,
    evolutionary_search,
    get_evaluator,
)
from repro.meta.evaluator import EvalContext, EvalOutcome, resolve_evaluator
from repro.obs import ObsConfig, Recorder
from repro.sim import SimGPU
from repro.tir import structural_hash

from ..common import build_matmul


def _search(evaluator, seed=3, trials=6):
    func = build_matmul(64, 64, 64, dtype="float16")
    config = TuneConfig(trials=trials, population=4, seed=seed)
    repro_cache.clear_all()
    return evolutionary_search(
        func, TensorCoreSketch(), SimGPU(), config, evaluator=evaluator
    )


@pytest.fixture(scope="module")
def process_pool():
    # Process workers are expensive to start on a small box — every test
    # in this module shares the registry instance (as real searches do).
    return get_evaluator("processes", 2)


class TestBackendDeterminism:
    def test_matrix_identical_results(self, process_pool):
        """serial == threads(2) == processes(2), byte for byte."""
        results = {
            "serial": _search(SerialEvaluator()),
            "threads": _search(ThreadEvaluator(2)),
            "processes": _search(process_pool),
        }
        base = results["serial"]
        assert base.best_func is not None
        base_hash = structural_hash(base.best_func)
        for name, result in results.items():
            assert result.best_cycles == base.best_cycles, name
            assert structural_hash(result.best_func) == base_hash, name
            assert (
                result.stats.rejected_by_code == base.stats.rejected_by_code
            ), name
            assert (
                result.stats.search_signature() == base.stats.search_signature()
            ), name

    def test_worker_count_does_not_change_results(self):
        one = _search(ThreadEvaluator(1))
        four = _search(ThreadEvaluator(4))
        assert one.best_cycles == four.best_cycles
        assert structural_hash(one.best_func) == structural_hash(four.best_func)
        assert one.stats.search_signature() == four.stats.search_signature()

    def test_slots_scale_with_workers_but_signature_excludes_them(self):
        one = _search(ThreadEvaluator(1))
        four = _search(ThreadEvaluator(4))
        assert four.stats.eval_batch_slots == 4 * one.stats.eval_batch_slots
        assert "eval_batch_slots" not in one.stats.search_signature()
        assert one.stats.eval_batches > 0


class TestPickleBoundary:
    def test_candidate_spec_round_trip(self):
        spec = CandidateSpec(seed=17, forced=(4, (2, 8), "vectorize"), parent_trial=3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.forced_list() == [4, (2, 8), "vectorize"]

    def test_tune_config_round_trip(self):
        config = TuneConfig(trials=9, seed=5, evaluator="processes", search_workers=3)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.evaluator == "processes"

    def test_obs_config_round_trip(self):
        config = ObsConfig(enabled=True, max_events=123, sample_rate=0.5)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_unpicklable_context_falls_back_to_threads(self, process_pool):
        # A distinct workload size: context blobs are cached by content
        # key, and a cached blob would mask the pickling failure.
        func = build_matmul(32, 32, 32, dtype="float16")
        sketch = TensorCoreSketch()
        sketch._poison = lambda: None  # lambdas cannot cross the pickle boundary
        ctx = EvalContext(func, sketch, SimGPU())
        specs = [CandidateSpec(seed=s) for s in (1, 2, 3)]
        before = process_pool.counters()["fallbacks"]
        outcomes = process_pool.evaluate(ctx, specs)
        assert process_pool.counters()["fallbacks"] == before + 1
        # The fallback still honours the contract: submission order,
        # one outcome per spec, exactly one of (func, rejection) set.
        assert [o.spec for o in outcomes] == specs
        for outcome in outcomes:
            assert isinstance(outcome, EvalOutcome)
            assert (outcome.func is None) != (outcome.rejection is None)


class TestProtocolSurface:
    def test_resolve_auto_serial_for_one_worker(self):
        ev = resolve_evaluator(TuneConfig(search_workers=1))
        assert isinstance(ev, SerialEvaluator)

    def test_resolve_auto_threads_for_many_workers(self):
        ev = resolve_evaluator(TuneConfig(search_workers=3))
        assert isinstance(ev, ThreadEvaluator)
        assert ev.workers == 3

    def test_resolve_passes_instances_through(self):
        mine = SerialEvaluator()
        assert resolve_evaluator(TuneConfig(evaluator=mine)) is mine

    def test_shared_registry_reuses_instances(self):
        assert get_evaluator("threads", 2) is get_evaluator("threads", 2)

    def test_config_rejects_unknown_backend_names(self):
        with pytest.raises(ValueError, match="evaluator"):
            TuneConfig(evaluator="gpu-farm")
        with pytest.raises(TypeError, match="Evaluator"):
            TuneConfig(evaluator=42)

    def test_occupancy_counters_accumulate(self):
        ev = SerialEvaluator()
        _search(ev)
        counters = ev.counters()
        assert counters["batches"] > 0
        assert counters["candidates"] >= counters["batches"]
        assert counters["busy_seconds"] > 0

    def test_search_folds_counters_into_telemetry(self):
        telemetry = Telemetry()
        func = build_matmul(64, 64, 64, dtype="float16")
        repro_cache.clear_all()
        evolutionary_search(
            func,
            TensorCoreSketch(),
            SimGPU(),
            TuneConfig(trials=4, population=4, seed=0),
            telemetry=telemetry,
            evaluator=SerialEvaluator(),
        )
        counters = telemetry.counters_by_prefix("evaluator.serial")
        assert counters.get("batches", 0) > 0
        assert counters.get("candidates", 0) > 0

    def test_recorder_meta_carries_backend_but_not_events(self):
        config = TuneConfig(
            trials=4, population=4, seed=0, obs=ObsConfig(enabled=True)
        )
        func = build_matmul(64, 64, 64, dtype="float16")

        def run(evaluator):
            recorder = Recorder(config.obs)
            repro_cache.clear_all()
            evolutionary_search(
                func, TensorCoreSketch(), SimGPU(), config,
                recorder=recorder, evaluator=evaluator,
            )
            return recorder

        serial = run(SerialEvaluator())
        threads = run(ThreadEvaluator(2))
        assert "serialx1" in serial.meta["evaluators"]
        assert serial.meta["evaluators"]["serialx1"]["candidates"] > 0
        assert "threadsx2" in threads.meta["evaluators"]
        # Backend identity lives only in meta: the event stream itself
        # must be identical across backends (the hash-identity contract).
        serial_kinds = [e.get("kind") for e in serial.stream.events()]
        thread_kinds = [e.get("kind") for e in threads.stream.events()]
        assert serial_kinds == thread_kinds


class TestCandidateCacheBypass:
    def test_unhashable_decisions_count_a_miss(self):
        """The TypeError bypass must be visible in hit-rate accounting."""
        from repro.meta.search import _CANDIDATE_CACHE, _build_candidate_cached

        class UnhashableInt(int):
            __hash__ = None  # a decision the cache key cannot index

        def poison(value):
            if isinstance(value, list):
                return [poison(v) for v in value]
            if isinstance(value, int):
                return UnhashableInt(value)
            return value

        func = build_matmul(64, 64, 64, dtype="float16")
        sketch, target = TensorCoreSketch(), SimGPU()
        repro_cache.clear_all()
        cand, rejection, _ = _build_candidate_cached(
            func, sketch, 0, None, target, True
        )
        assert cand is not None, rejection
        forced = [poison(v) for v in cand.decisions]
        before = _CANDIDATE_CACHE.misses
        replayed, rejection, _ = _build_candidate_cached(
            func, sketch, 0, forced, target, True
        )
        assert _CANDIDATE_CACHE.misses == before + 1
        # The uncached build is still the real build.
        assert replayed is not None, rejection
        assert replayed.decisions == cand.decisions


class TestIpcBatching:
    """Specs ship to process workers in chunks — one IPC round-trip per
    worker per batch — and chunking must be invisible to the search."""

    def test_chunking_is_contiguous_and_order_preserving(self):
        specs = [CandidateSpec(seed=s) for s in range(7)]
        chunks = ProcessEvaluator._chunk(specs, 3)
        assert len(chunks) == 3
        assert [len(c) for c in chunks] == [3, 2, 2]
        assert [s for chunk in chunks for s in chunk] == specs

    def test_chunk_count_never_exceeds_specs(self):
        specs = [CandidateSpec(seed=s) for s in range(2)]
        chunks = ProcessEvaluator._chunk(specs, 8)
        assert len(chunks) == 2
        assert all(len(c) == 1 for c in chunks)
        assert ProcessEvaluator._chunk(specs, 1) == [specs]

    def test_batched_evaluate_matches_serial(self, process_pool):
        func = build_matmul(64, 64, 64, dtype="float16")
        ctx = EvalContext(func, TensorCoreSketch(), SimGPU())
        specs = [CandidateSpec(seed=s) for s in range(9)]
        repro_cache.clear_all()
        serial = SerialEvaluator().evaluate(ctx, specs)
        batched = process_pool.evaluate(ctx, specs)
        assert [o.spec for o in batched] == specs
        for a, b in zip(serial, batched):
            assert a.rejection == b.rejection
            assert a.decisions == b.decisions
            if a.func is not None:
                assert structural_hash(a.func) == structural_hash(b.func)

    def test_ipc_batches_counter_counts_chunks_not_specs(self, process_pool):
        func = build_matmul(48, 48, 48, dtype="float16")
        ctx = EvalContext(func, TensorCoreSketch(), SimGPU())
        specs = [CandidateSpec(seed=s) for s in range(10)]
        before = process_pool.counters()["ipc_batches"]
        process_pool.evaluate(ctx, specs)
        grown = process_pool.counters()["ipc_batches"] - before
        assert 0 < grown <= process_pool.workers

    def test_empty_batch_is_a_noop(self, process_pool):
        func = build_matmul(32, 32, 32, dtype="float16")
        ctx = EvalContext(func, TensorCoreSketch(), SimGPU())
        assert process_pool.evaluate(ctx, []) == []
