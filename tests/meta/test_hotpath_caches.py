"""Behavioural tests for the search hot-path caches.

Three properties matter:

1. **Transparency** — caching must never change what the search
   computes: cached and uncached runs (and warm re-runs) produce
   identical best programs, cycles and stats for a fixed seed.
2. **Invalidation** — a schedule transformation produces a new tree
   with a new structural hash, so stale results can never be served;
   and values returned from a cache must not alias mutable cache state.
3. **Accounting** — ``SearchStats.rejected_by_code`` sums to
   ``invalid_rejected + apply_failed`` (TIR501 included), and session
   reports surface per-cache hit/miss counters.
"""

import numpy as np
import pytest

from repro import cache as repro_cache
from repro import tir
from repro.frontend import ops
from repro.meta import TuneConfig, TuningSession, evolutionary_search, tune
from repro.meta.feature import extract_features
from repro.meta.search import SearchStats
from repro.meta.sketch import Sketch
from repro.schedule import Schedule, verify
from repro.sim import SimGPU, Target, estimate


class IdentitySketch(Sketch):
    """Leaves the program untouched (no decisions, always applicable)."""

    name = "identity"

    def applicable(self, sch):
        return True

    def apply(self, sch):
        pass


class TestRejectionAccounting:
    def test_rejected_by_code_sums_on_a_real_search(self):
        result = tune(
            ops.matmul(128, 128, 128), SimGPU(), TuneConfig(trials=8, seed=3)
        )
        stats = result.stats
        assert sum(stats.rejected_by_code.values()) == (
            stats.invalid_rejected + stats.apply_failed
        )

    def test_uncostable_candidates_count_tir501(self):
        # An abstract target has no performance model, so every measured
        # candidate raises CostModelError; with validation off, those
        # rejections must land in the TIR501 bucket and keep the sum
        # invariant intact.
        result = evolutionary_search(
            ops.matmul(16, 16, 16),
            IdentitySketch(),
            Target(),
            TuneConfig(trials=4, seed=0, validate=False, generations=1),
        )
        stats = result.stats
        assert stats.measured == 0
        assert stats.rejected_by_code["TIR501"] > 0
        assert sum(stats.rejected_by_code.values()) == (
            stats.invalid_rejected + stats.apply_failed
        )

    def test_merge_preserves_per_code_counts(self):
        a, b = SearchStats(), SearchStats()
        a.invalid_rejected, a.rejected_by_code["TIR501"] = 1, 1
        b.apply_failed, b.rejected_by_code["TIR401"] = 2, 2
        a.merge(b)
        assert sum(a.rejected_by_code.values()) == a.invalid_rejected + a.apply_failed


class TestCachingTransparency:
    def _tune(self, caches: bool, workers: int = 1):
        func = ops.matmul(128, 128, 128)
        config = TuneConfig(trials=6, seed=11, search_workers=workers)
        previous = repro_cache.set_enabled(caches)
        try:
            repro_cache.clear_all()
            return tune(func, SimGPU(), config)
        finally:
            repro_cache.set_enabled(previous)

    def test_cached_equals_uncached(self):
        base = self._tune(caches=False)
        cached = self._tune(caches=True)
        assert base.best_cycles == cached.best_cycles
        assert tir.structural_equal(base.best_func, cached.best_func)
        assert base.best_decisions == cached.best_decisions
        assert base.stats.candidates_generated == cached.stats.candidates_generated
        assert base.stats.measured == cached.stats.measured

    def test_warm_retune_is_identical(self):
        func = ops.matmul(128, 128, 128)
        config = TuneConfig(trials=6, seed=11)
        previous = repro_cache.set_enabled(True)
        try:
            repro_cache.clear_all()
            cold = tune(func, SimGPU(), config)
            before = repro_cache.snapshot_counts()
            warm = tune(func, SimGPU(), config)
            delta = repro_cache.delta_since(before)
        finally:
            repro_cache.set_enabled(previous)
        assert warm.best_cycles == cold.best_cycles
        assert tir.structural_equal(warm.best_func, cold.best_func)
        # The warm pass must replay candidate construction from cache.
        assert delta["search.candidates"]["hits"] > 0
        assert delta["search.candidates"]["misses"] == 0

    def test_batched_workers_deterministic(self):
        first = self._tune(caches=True, workers=2)
        second = self._tune(caches=True, workers=2)
        assert first.best_cycles == second.best_cycles
        assert tir.structural_equal(first.best_func, second.best_func)
        assert first.stats.eval_batches == second.stats.eval_batches > 0
        assert first.stats.eval_batch_candidates > 0
        assert first.stats.eval_batch_slots > 0

    def test_features_identical_enabled_vs_disabled(self):
        func = ops.matmul(64, 64, 64)
        target = SimGPU()
        previous = repro_cache.set_enabled(False)
        try:
            uncached = extract_features(func, target)
        finally:
            repro_cache.set_enabled(previous)
        cached = extract_features(func, target)
        again = extract_features(func, target)
        assert np.array_equal(uncached, cached)
        assert np.array_equal(cached, again)


class TestInvalidation:
    def test_schedule_transform_refreshes_verify(self):
        func = ops.matmul(64, 64, 64)
        target = SimGPU()
        assert verify(func, target) == []
        sch = Schedule(func)
        block = sch.get_block("C")
        loops = sch.get_loops(block)
        sch.split(loops[0], [4, 16])
        # The transformed func is a new tree with a new hash: verify
        # must analyse it fresh, not replay the pre-split diagnostics.
        assert verify(sch.func, target) == []
        assert tir.structural_hash(func) != tir.structural_hash(sch.func)

    def test_estimate_copies_are_isolated(self):
        func = ops.matmul(64, 64, 64)
        target = SimGPU()
        first = estimate(func, target)
        # Mutating a returned report must not poison the cache.
        first.breakdown["poison"] = 1.0
        first.counts["poison"] = 1.0
        second = estimate(func, target)
        assert "poison" not in second.breakdown
        assert "poison" not in second.counts
        assert second.cycles == first.cycles

    def test_estimate_idempotent(self):
        func = ops.matmul(64, 64, 64)
        target = SimGPU()
        assert estimate(func, target).cycles == estimate(func, target).cycles

    def test_feature_vector_is_read_only(self):
        vec = extract_features(ops.matmul(64, 64, 64), SimGPU())
        with pytest.raises(ValueError):
            vec[0] = 99.0


class TestScheduleCopyDeterminism:
    def test_copy_streams_reproducible_from_parent_seed(self):
        func = ops.matmul(64, 64, 64)
        draws = []
        for _ in range(2):
            parent = Schedule(func, seed=5)
            clones = [parent.copy(), parent.copy()]
            draws.append(
                [c.sample_categorical([1, 2, 4, 8, 16]) for c in clones]
            )
        assert draws[0] == draws[1]

    def test_successive_copies_get_distinct_seeds(self):
        parent = Schedule(ops.matmul(64, 64, 64), seed=5)
        a, b = parent.copy(), parent.copy()
        assert a.rng.getstate() != b.rng.getstate()

    def test_explicit_seed_does_not_consume_parent_entropy(self):
        func = ops.matmul(64, 64, 64)
        p1 = Schedule(func, seed=5)
        p2 = Schedule(func, seed=5)
        p1.copy(seed=123)
        assert p1.rng.getstate() == p2.rng.getstate()


class TestSessionObservability:
    def test_session_report_carries_cache_stats(self):
        session = TuningSession(SimGPU(), TuneConfig(trials=4, seed=0), workers=1)
        session.add(ops.matmul(64, 64, 64))
        report = session.run()
        assert report.cache_stats, "expected per-cache hit/miss counters"
        for name, counts in report.cache_stats.items():
            assert set(counts) >= {"hits", "misses"}, name
        counters = report.telemetry["counters"]
        cache_counter_names = [k for k in counters if k.startswith("cache.")]
        assert any(k.endswith(".hits") for k in cache_counter_names)
        assert any(k.endswith(".misses") for k in cache_counter_names)
        assert "cache_stats" in report.to_json()
