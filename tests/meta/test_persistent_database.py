"""Tests for the persistent on-disk tuning database.

The durability contracts behind the schedule server: atomic JSONL
commits that round-trip through a restart, corrupt/truncated-line
recovery with diagnostics instead of crashes, versioned-schema skips,
TTL expiry, and LRU bounding.
"""

import json
import os

import pytest

from repro.frontend import ops
from repro.meta import TuneConfig, tune
from repro.meta.database import (
    DB_SCHEMA,
    Database,
    DatabaseEntry,
    PersistentDatabase,
    workload_key,
)
from repro.sim import SimGPU, estimate


@pytest.fixture(scope="module")
def tuned():
    func = ops.matmul(128, 128, 128)
    result = tune(func, SimGPU(), TuneConfig(trials=8, seed=0))
    return func, result


def _entry(key: str, cycles: float = 100.0, **overrides) -> DatabaseEntry:
    fields = dict(
        key=key,
        workload="matmul",
        target="sim-gpu",
        sketch="tensor-core",
        decisions=[1, 2, 3],
        cycles=cycles,
        provenance="search",
    )
    fields.update(overrides)
    return DatabaseEntry(**fields)


class TestRoundTrip:
    def test_commit_then_reload(self, tmp_path, tuned):
        func, result = tuned
        root = str(tmp_path / "db")
        db = PersistentDatabase(root)
        assert isinstance(db, Database)
        db.record(
            func, SimGPU(), result.best_sketch, result.best_decisions,
            result.best_cycles,
        )
        key = workload_key(func, SimGPU())
        # durable the moment put returns: a fresh instance sees it
        db2 = PersistentDatabase(root)
        entry = db2.get(key)
        assert entry is not None
        assert entry.sketch == result.best_sketch
        assert entry.decisions == result.best_decisions
        assert entry.cycles == result.best_cycles
        assert entry.structural_hash is not None
        sch = db2.replay(func, SimGPU())
        assert sch is not None
        assert estimate(sch.func, SimGPU()).cycles == pytest.approx(result.best_cycles)

    def test_record_lines_are_versioned(self, tmp_path):
        db = PersistentDatabase(str(tmp_path / "db"))
        db.put(_entry("k" * 24))
        path = os.path.join(str(tmp_path / "db"), "entries", "k" * 24 + ".jsonl")
        with open(path) as f:
            lines = [json.loads(line) for line in f if line.strip()]
        assert len(lines) == 1
        assert lines[0]["schema"] == DB_SCHEMA
        assert lines[0]["key"] == "k" * 24

    def test_put_keeps_best(self, tmp_path):
        db = PersistentDatabase(str(tmp_path / "db"))
        db.put(_entry("aa", cycles=100.0))
        kept = db.put(_entry("aa", cycles=200.0))
        assert kept.cycles == 100.0
        assert db.get("aa").cycles == 100.0

    def test_evict_removes_file(self, tmp_path):
        root = str(tmp_path / "db")
        db = PersistentDatabase(root)
        db.put(_entry("aa"))
        path = os.path.join(root, "entries", "aa.jsonl")
        assert os.path.exists(path)
        assert db.evict("aa") is True
        assert not os.path.exists(path)
        assert db.evict("aa") is False
        assert PersistentDatabase(root).get("aa") is None


class TestCorruptionRecovery:
    def test_truncated_line_skipped_with_diagnostic(self, tmp_path):
        root = str(tmp_path / "db")
        db = PersistentDatabase(root)
        db.put(_entry("aa", cycles=42.0))
        path = os.path.join(root, "entries", "aa.jsonl")
        # simulate a crashed appender: half a JSON object on a new line
        with open(path, "a") as f:
            f.write('{"schema": "repro.db/1", "key": "aa", "cyc')
        db2 = PersistentDatabase(root)
        entry = db2.get("aa")
        assert entry is not None and entry.cycles == 42.0
        assert any("truncated/corrupt" in d for d in db2.diagnostics)

    def test_last_valid_line_wins(self, tmp_path):
        root = str(tmp_path / "db")
        db = PersistentDatabase(root)
        db.put(_entry("aa", cycles=100.0))
        path = os.path.join(root, "entries", "aa.jsonl")
        newer = {"schema": DB_SCHEMA, "key": "aa"}
        newer.update(_entry("aa", cycles=50.0).to_record())
        with open(path, "a") as f:
            f.write(json.dumps(newer) + "\n")
            f.write("garbage that is not json\n")
        db2 = PersistentDatabase(root)
        assert db2.get("aa").cycles == 50.0

    def test_unknown_schema_major_skipped(self, tmp_path):
        root = str(tmp_path / "db")
        os.makedirs(os.path.join(root, "entries"))
        record = {"schema": "repro.db2/9", "key": "aa"}
        record.update(_entry("aa").to_record())
        with open(os.path.join(root, "entries", "aa.jsonl"), "w") as f:
            f.write(json.dumps(record) + "\n")
        db = PersistentDatabase(root)
        assert db.get("aa") is None
        assert any("unknown schema" in d for d in db.diagnostics)

    def test_missing_fields_skipped(self, tmp_path):
        root = str(tmp_path / "db")
        os.makedirs(os.path.join(root, "entries"))
        with open(os.path.join(root, "entries", "aa.jsonl"), "w") as f:
            f.write(json.dumps({"schema": DB_SCHEMA, "key": "aa"}) + "\n")
        db = PersistentDatabase(root)
        assert db.get("aa") is None
        assert any("missing required fields" in d for d in db.diagnostics)

    def test_mismatched_filename_skipped(self, tmp_path):
        root = str(tmp_path / "db")
        os.makedirs(os.path.join(root, "entries"))
        record = {"schema": DB_SCHEMA}
        record.update(_entry("bb").to_record())
        record["key"] = "bb"
        with open(os.path.join(root, "entries", "aa.jsonl"), "w") as f:
            f.write(json.dumps(record) + "\n")
        db = PersistentDatabase(root)
        assert db.get("aa") is None and db.get("bb") is None
        assert any("does not match" in d for d in db.diagnostics)

    def test_corrupt_lru_sidecar_resets(self, tmp_path):
        root = str(tmp_path / "db")
        db = PersistentDatabase(root)
        db.put(_entry("aa", cycles=7.0))
        with open(os.path.join(root, "lru.json"), "w") as f:
            f.write("{ not json")
        db2 = PersistentDatabase(root)
        assert db2.get("aa").cycles == 7.0
        assert any("lru.json" in d for d in db2.diagnostics)


class TestEviction:
    def test_ttl_lazy_eviction_on_get(self, tmp_path):
        clock = [1000.0]
        db = PersistentDatabase(
            str(tmp_path / "db"), ttl_seconds=60.0, clock=lambda: clock[0]
        )
        db.put(_entry("aa"))
        assert db.get("aa") is not None
        clock[0] += 120.0
        assert db.get("aa") is None
        assert "aa" not in db
        assert not os.path.exists(
            os.path.join(str(tmp_path / "db"), "entries", "aa.jsonl")
        )

    def test_evict_expired_sweep(self, tmp_path):
        clock = [1000.0]
        db = PersistentDatabase(
            str(tmp_path / "db"), ttl_seconds=60.0, clock=lambda: clock[0]
        )
        db.put(_entry("aa"))
        clock[0] += 30.0
        db.put(_entry("bb"))
        clock[0] += 45.0  # aa is 75s old, bb 45s old
        assert db.evict_expired() == ["aa"]
        assert db.keys() == ["bb"]

    def test_max_entries_lru(self, tmp_path):
        clock = [1000.0]
        db = PersistentDatabase(
            str(tmp_path / "db"), max_entries=2, clock=lambda: clock[0]
        )
        db.put(_entry("aa"))
        clock[0] += 1.0
        db.put(_entry("bb"))
        clock[0] += 1.0
        db.get("aa")  # refresh aa — bb is now the LRU victim
        clock[0] += 1.0
        db.put(_entry("cc"))
        assert db.keys() == ["aa", "cc"]

    def test_accounting_survives_restart(self, tmp_path):
        root = str(tmp_path / "db")
        db = PersistentDatabase(root)
        db.put(_entry("aa"))
        db.get("aa")
        db.flush_lru()
        db2 = PersistentDatabase(root)
        assert db2.stats()["hits"] >= 1.0
        assert db2.stats()["entries"] == 1.0
