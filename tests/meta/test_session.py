"""Tests for the TuningSession orchestrator: dedup, replay, parallel
determinism, budget allocation and the JSON telemetry report."""

import json
import time

import pytest

from repro import TuneConfig, TuningDatabase, TuningSession, tune
from repro.frontend import LayerSpec, NetworkSpec, network_latency, ops
from repro.meta import estimated_cost
from repro.sim import SimGPU


def _gemm_layer(name, n, m, k, count=1):
    from functools import partial

    return LayerSpec(name, partial(ops.matmul, n, m, k), count)


@pytest.fixture(scope="module")
def four_layer_net():
    """Four layers, two of which are the same workload (128^3 GEMM)."""
    return NetworkSpec(
        "tiny-net",
        [
            _gemm_layer("gemm_a", 128, 128, 128),
            _gemm_layer("gemm_a_dup", 128, 128, 128),
            _gemm_layer("gemm_b", 256, 256, 256),
            _gemm_layer("gemm_c", 64, 64, 512),
        ],
    )


@pytest.fixture(scope="module")
def session_report(four_layer_net):
    session = TuningSession(SimGPU(), TuneConfig(trials=6, seed=0), workers=2)
    session.add_network(four_layer_net)
    return session, session.run()


class TestDedupAndReplay:
    def test_exactly_three_searches_one_replay(self, session_report):
        _, report = session_report
        assert report.totals["tasks_searched"] == 3
        assert report.totals["tasks_replayed"] == 1
        assert report.totals["tasks_failed"] == 0
        assert report.telemetry["counters"]["tasks_searched"] == 3
        assert report.telemetry["counters"]["tasks_replayed"] == 1

    def test_runs_on_multiple_workers(self, session_report):
        _, report = session_report
        assert report.workers >= 2

    def test_replay_matches_search(self, session_report):
        _, report = session_report
        assert report.cycles_for("gemm_a_dup") == report.cycles_for("gemm_a")
        assert report.task("gemm_a_dup").status == "replayed"
        assert report.task("gemm_a_dup").tuning_seconds == 0.0
        assert report.task("gemm_a_dup").key == report.task("gemm_a").key

    def test_database_holds_unique_workloads(self, session_report):
        session, _ = session_report
        assert len(session.database) == 3
        assert all(e.provenance == "session" for e in session.database.entries())

    def test_prepopulated_database_skips_search(self, session_report, four_layer_net):
        session, _ = session_report
        fresh = TuningSession(
            SimGPU(),
            TuneConfig(trials=6, seed=0),
            database=session.database,
            workers=2,
        )
        fresh.add_network(four_layer_net)
        report = fresh.run()
        assert report.totals["tasks_searched"] == 0
        assert report.totals["tasks_replayed"] == 4
        assert report.tuning_seconds == 0.0


class TestDeterminism:
    def test_parallel_equals_serial(self):
        def run_with(workers):
            session = TuningSession(
                SimGPU(), TuneConfig(trials=5, seed=3), workers=workers
            )
            session.add(ops.matmul(128, 128, 128), name="a")
            session.add(ops.matmul(64, 64, 256), name="b")
            session.add(ops.matmul(256, 64, 64), name="c")
            report = session.run()
            return {
                (t.name, t.cycles, t.sketch, t.status) for t in report.tasks
            }, {n: r.best_decisions for n, r in session.results.items()}

        serial_rows, serial_dec = run_with(1)
        parallel_rows, parallel_dec = run_with(4)
        assert serial_rows == parallel_rows
        assert serial_dec == parallel_dec


class TestTelemetryReport:
    def test_json_round_trip(self, session_report):
        _, report = session_report
        loaded = json.loads(report.dumps())
        assert loaded["totals"]["tasks_searched"] == 3
        assert len(loaded["tasks"]) == 4
        assert "stage_seconds" in loaded["telemetry"]

    def test_profiling_accounting_matches_table1_arithmetic(self, four_layer_net):
        """Per-task profiling seconds in the report sum to the same
        number the Table 1-style loop (tune each unique layer, add the
        tuning_seconds) produces — within 1%."""
        session = TuningSession(SimGPU(), TuneConfig(trials=6, seed=0), workers=2)
        session.add_network(four_layer_net)
        report = session.run()
        by_hand = 0.0
        seen = set()
        for layer in four_layer_net.layers:
            func = layer.builder()
            from repro.meta.database import workload_key

            key = workload_key(func, SimGPU())
            if key in seen:
                continue
            seen.add(key)
            by_hand += tune(func, SimGPU(), TuneConfig(trials=6, seed=0)).tuning_seconds
        assert report.tuning_seconds == pytest.approx(by_hand, rel=0.01)
        assert report.tuning_seconds == pytest.approx(
            sum(t.tuning_seconds for t in report.tasks), rel=1e-9
        )

    def test_span_totals_track_wall_time(self):
        """A serial session's per-stage span totals account for (almost)
        all of the search wall-clock."""
        session = TuningSession(SimGPU(), TuneConfig(trials=5, seed=0), workers=1)
        session.add(ops.matmul(128, 128, 128))
        t0 = time.perf_counter()
        report = session.run()
        wall = time.perf_counter() - t0
        stage_total = sum(
            secs
            for stage, secs in report.telemetry["stage_seconds"].items()
            if stage != "plan"
        )
        assert 0.5 * wall < stage_total <= wall * 1.05

    def test_search_stages_present(self, session_report):
        _, report = session_report
        stages = report.telemetry["stage_seconds"]
        for stage in ("sketch-gen", "evolve", "validate", "measure", "model-update", "replay"):
            assert stage in stages, stage


class TestBudgetAllocation:
    def test_proportional_to_cost_share(self):
        session = TuningSession(SimGPU(), TuneConfig(seed=0), workers=1)
        session.add(ops.matmul(512, 512, 512), name="big")
        session.add(ops.matmul(64, 64, 64), name="small")
        report = session.run(total_trials=40)
        big = report.task("big").trials_allocated
        small = report.task("small").trials_allocated
        assert big > small
        assert big + small == pytest.approx(40, abs=4)

    def test_weight_scales_share(self):
        cost = estimated_cost(ops.matmul(128, 128, 128))
        assert cost == pytest.approx(128**3)

    def test_default_budget_is_config_trials(self, session_report):
        _, report = session_report
        assert all(
            t.trials_allocated == 6 for t in report.tasks if t.status == "searched"
        )


class TestNetworkLatencyFromSession:
    def test_latency_accepts_report(self, session_report, four_layer_net):
        _, report = session_report
        total = network_latency(four_layer_net, report)
        by_hand = sum(
            layer.count * report.seconds_for(layer.name)
            for layer in four_layer_net.layers
        )
        assert total == pytest.approx(by_hand)
        assert total > 0


class TestGraphTasks:
    def test_add_graph_dedups_identical_fused_groups(self):
        from repro.frontend import Graph, fuse_graph, graph_latency

        g = Graph("stack")
        x = g.input("x", (32, 32), "float16")
        for _ in range(2):
            t = g.op("mm", ops.matmul(32, 32, 32), x)
            x = g.op("bias", ops.bias_add((32, 32)), t)
        plan = fuse_graph(g)

        session = TuningSession(SimGPU(), TuneConfig(trials=4, seed=0), workers=1)
        names = session.add_graph(plan)
        assert names == ["mm+bias_add", "mm#2+bias_add"]
        report = session.run()
        # Both groups lower to the same canonical PrimFunc: one search,
        # one database replay.
        assert report.totals["tasks_searched"] == 1
        assert report.totals["tasks_replayed"] == 1
        assert report.task("mm#2+bias_add").key == report.task("mm+bias_add").key

        total = graph_latency(plan, report)
        by_hand = sum(report.seconds_for(grp.task_name) for grp in plan.groups)
        assert total == pytest.approx(by_hand)
        assert total > 0

    def test_add_graph_accepts_raw_graph_and_fuse_flag(self):
        from repro.frontend import Graph

        g = Graph("pair")
        x = g.input("x", (32, 32), "float16")
        t = g.op("mm", ops.matmul(32, 32, 32), x)
        g.op("relu", ops.elementwise((32, 32), "relu", "float16"), t)

        fused = TuningSession(SimGPU(), TuneConfig(trials=4, seed=0))
        assert fused.add_graph(g) == ["mm+relu"]
        unfused = TuningSession(SimGPU(), TuneConfig(trials=4, seed=0))
        assert unfused.add_graph(g, fuse=False) == ["mm", "relu"]
