"""Tests for sketch generation, the cost model and evolutionary search."""

import numpy as np
import pytest

from repro.meta import (
    CostModel,
    CpuScalarSketch,
    CpuSdotSketch,
    GpuScalarSketch,
    TensorCoreSketch,
    TuneConfig,
    evolutionary_search,
    extract_features,
    generate_sketches,
    main_block_of,
    tune,
)
from repro.meta.feature import FEATURE_NAMES
from repro.runtime import random_args, run
from repro.schedule import Schedule, verify
from repro.sim import SimCPU, SimGPU, estimate
from repro.tir import Cast, IRBuilder

from ..common import build_matmul, build_matmul_relu


def qgemm_func(n=64):
    b = IRBuilder("qgemm")
    A = b.arg_buffer("A", (n, n), "int8")
    B = b.arg_buffer("B", (n, n), "int8")
    C = b.arg_buffer("C", (n, n), "int32")
    with b.grid(n, n, n) as (i, j, k):
        with b.block("C") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            vk = blk.reduce(n, k)
            with blk.init():
                b.store(C, (vi, vj), 0)
            b.store(
                C, (vi, vj), C[vi, vj] + Cast("int32", A[vi, vk]) * Cast("int32", B[vk, vj])
            )
    return b.finish()


class TestSketchGeneration:
    def test_gpu_fp16_gets_tensor_core_sketch(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        names = [s.name for s in generate_sketches(sch, SimGPU())]
        assert names == ["tensor-core", "gpu-scalar"]

    def test_gpu_fp32_scalar_only(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float32"))
        names = [s.name for s in generate_sketches(sch, SimGPU())]
        assert names == ["gpu-scalar"]

    def test_baseline_mode_disables_tensorize(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        names = [s.name for s in generate_sketches(sch, SimGPU(), allow_tensorize=False)]
        assert names == ["gpu-scalar"]

    def test_cpu_int8_gets_sdot_sketch(self):
        sch = Schedule(qgemm_func())
        names = [s.name for s in generate_sketches(sch, SimCPU())]
        assert names == ["cpu-sdot", "cpu-scalar"]

    def test_main_block_prefers_reduction(self):
        sch = Schedule(build_matmul_relu(32))
        assert main_block_of(sch).name == "C"


class TestSketchApplication:
    def test_tensor_core_sketch_valid_and_correct(self):
        for seed in (3, 11):
            sch = Schedule(build_matmul(128, 128, 128, dtype="float16"), seed=seed)
            TensorCoreSketch().apply(sch)
            # May exceed shared memory for some samples; skip those.
            problems = verify(sch.func, SimGPU())
            if problems:
                assert all("shared memory" in p for p in problems)
                continue
            args = random_args(sch.func)
            run(sch.func, args)
            ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
            np.testing.assert_allclose(args["C"].astype(np.float32), ref, atol=0.2)

    def test_tensor_core_sketch_uses_all_memory_levels(self):
        sch = Schedule(build_matmul(128, 128, 128, dtype="float16"), seed=3)
        TensorCoreSketch().apply(sch)
        scopes = set()
        for rv in sch.get_blocks():
            for region in sch.block_of(rv).writes:
                scopes.add(region.buffer.scope)
        assert "shared" in scopes
        assert "wmma.matrix_a" in scopes and "wmma.accumulator" in scopes

    def test_epilogue_fused_into_writeback(self):
        # The tensorized sketch routes the output through an accumulator
        # write-back; the elementwise epilogue must fold into that copy.
        f = build_matmul_relu(128, dtype="float16")
        sch = Schedule(f, seed=3)
        TensorCoreSketch().apply(sch)
        names = [rv.name for rv in sch.get_blocks()]
        assert "D" not in names  # relu collapsed into the write-back
        args = random_args(sch.func)
        run(sch.func, args)
        ref = np.maximum(
            args["A"].astype(np.float32) @ args["B"].astype(np.float32), 0
        )
        np.testing.assert_allclose(args["D"].astype(np.float32), ref, atol=0.2)

    def test_scalar_sketch_fuses_epilogue_into_writeback(self):
        # With register accumulation the relu folds into the local
        # write-back copy; the result must still be correct.
        from repro.schedule import ScheduleError

        sch = None
        for seed in range(8):
            cand = Schedule(build_matmul_relu(64), seed=seed)
            try:
                GpuScalarSketch().apply(cand)
                sch = cand
                break
            except ScheduleError:
                continue
        assert sch is not None
        args = random_args(sch.func)
        run(sch.func, args)
        ref = np.maximum(args["A"].astype(np.float64) @ args["B"].astype(np.float64), 0)
        np.testing.assert_allclose(args["D"], ref, rtol=1e-3, atol=1e-4)

    def test_cpu_sdot_sketch_correct(self):
        sch = Schedule(qgemm_func(64), seed=2)
        CpuSdotSketch().apply(sch)
        assert verify(sch.func, SimCPU()) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.int32) @ args["B"].astype(np.int32)
        np.testing.assert_array_equal(args["C"], ref)

    def test_cpu_scalar_sketch_correct(self):
        sch = Schedule(build_matmul(64, 64, 64), seed=4)
        CpuScalarSketch().apply(sch)
        assert verify(sch.func, SimCPU()) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-4)


class TestCostModelFeatures:
    def test_feature_vector_shape(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"), seed=3)
        TensorCoreSketch().apply(sch)
        vec = extract_features(sch.func, SimGPU())
        assert vec.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(vec).all()

    def test_tensorized_feature_flag(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"), seed=3)
        TensorCoreSketch().apply(sch)
        vec = extract_features(sch.func, SimGPU())
        idx = FEATURE_NAMES.index("n_tensorized")
        assert vec[idx] >= 2  # mma + fill (+ load/store intrins)

    def test_cost_model_learns_ordering(self):
        target = SimGPU()
        model = CostModel(target, min_data=8)
        funcs, cycles = [], []
        for seed in range(14):
            sch = Schedule(build_matmul(128, 128, 128, dtype="float16"), seed=seed)
            TensorCoreSketch().apply(sch)
            funcs.append(sch.func)
            cycles.append(estimate(sch.func, target).cycles)
        model.update(funcs[:10], cycles[:10])
        assert model.is_trained
        pred = model.predict(funcs[10:])
        # Predicted scores should correlate with true speed on held-out
        # candidates: best-predicted should not be the actual worst.
        best_pred = int(np.argmax(pred))
        true = np.array(cycles[10:])
        assert true[best_pred] <= true.max()


class TestSearch:
    def test_search_returns_valid_best(self):
        func = build_matmul(128, 128, 128, dtype="float16")
        result = evolutionary_search(
            func, TensorCoreSketch(), SimGPU(), TuneConfig(trials=8, population=6, seed=0)
        )
        assert result.best_func is not None
        assert verify(result.best_func, SimGPU()) == []
        assert result.stats.measured <= 8

    def test_validation_filter_rejects_invalid_sketch(self):
        # A sketch that violates launch limits never reaches measurement:
        # the §4.4 validation filter rejects every candidate.
        from repro.meta import Sketch

        class BadSketch(Sketch):
            name = "bad"

            def applicable(self, sch):
                return True

            def apply(self, sch):
                i, j, k = sch.get_loops(sch.get_block("C"))
                sch.bind(i, "threadIdx.x")  # 4096 threads: over the limit

        func = build_matmul(4096, 16, 16, dtype="float16")
        result = evolutionary_search(
            func, BadSketch(), SimGPU(), TuneConfig(trials=4, population=4, seed=1)
        )
        assert result.stats.invalid_rejected > 0
        assert result.stats.measured == 0
        assert result.best_func is None

    def test_tune_prefers_tensorized(self):
        func = build_matmul(256, 256, 256, dtype="float16")
        result = tune(func, SimGPU(), TuneConfig(trials=16, seed=0))
        assert result.best_sketch == "tensor-core"

    def test_tune_beats_baseline(self):
        func = build_matmul(256, 256, 256, dtype="float16")
        ours = tune(func, SimGPU(), TuneConfig(trials=16, seed=0))
        baseline = tune(
            func, SimGPU(), TuneConfig(trials=16, seed=0, allow_tensorize=False)
        )
        assert ours.best_cycles < baseline.best_cycles

    def test_tuning_time_accounting(self):
        func = build_matmul(128, 128, 128, dtype="float16")
        result = tune(func, SimGPU(), TuneConfig(trials=6, seed=0))
        assert result.tuning_seconds > 0
        assert result.stats.profiling_seconds >= 0
