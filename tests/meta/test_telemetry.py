"""Tests for the telemetry layer: spans, counters, stats absorption."""

import dataclasses
import json
import threading

import pytest

from repro.meta import SearchStats, Telemetry


class TestSpans:
    def test_span_records_duration(self):
        t = Telemetry(clock=iter([0.0, 1.5]).__next__)
        with t.span("measure", task="gemm"):
            pass
        (span,) = t.spans
        assert span.stage == "measure"
        assert span.task == "gemm"
        assert span.duration == pytest.approx(1.5)

    def test_add_accumulated_duration(self):
        t = Telemetry()
        t.add("validate", 0.25, task="conv")
        assert t.stage_seconds()["validate"] == pytest.approx(0.25)
        assert t.task_seconds()["conv"] == pytest.approx(0.25)

    def test_stage_seconds_aggregates(self):
        t = Telemetry()
        t.add("evolve", 1.0, "a")
        t.add("evolve", 2.0, "b")
        t.add("measure", 0.5, "a")
        assert t.stage_seconds() == {"evolve": pytest.approx(3.0), "measure": pytest.approx(0.5)}
        assert t.task_seconds("evolve") == {"a": pytest.approx(1.0), "b": pytest.approx(2.0)}

    def test_threads_used(self):
        t = Telemetry()

        def work():
            t.add("evolve", 0.1, "x")

        threads = [threading.Thread(target=work) for _ in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.threads_used("evolve") == 3
        assert t.threads_used("measure") == 0


class TestCounters:
    def test_count_accumulates(self):
        t = Telemetry()
        t.count("tasks_replayed")
        t.count("tasks_replayed")
        t.count("trials", 5)
        assert t.counters == {"tasks_replayed": 2, "trials": 5}

    def test_absorb_stats_covers_every_field(self):
        """Field-generic absorption: a counter added to SearchStats
        tomorrow lands in telemetry without touching the module."""
        t = Telemetry()
        stats = SearchStats()
        for i, f in enumerate(dataclasses.fields(stats), start=1):
            setattr(stats, f.name, i)
        t.absorb_stats(stats)
        for i, f in enumerate(dataclasses.fields(stats), start=1):
            assert t.counters[f.name] == i

    def test_absorb_stats_twice_sums(self):
        t = Telemetry()
        s = SearchStats(measured=3, profiling_seconds=1.5)
        t.absorb_stats(s)
        t.absorb_stats(s)
        assert t.counters["measured"] == 6
        assert t.counters["profiling_seconds"] == pytest.approx(3.0)


class TestReport:
    def test_report_is_json_serialisable(self):
        t = Telemetry()
        with t.span("measure", "gemm"):
            pass
        t.count("tasks_searched")
        loaded = json.loads(t.to_json())
        assert loaded["counters"]["tasks_searched"] == 1
        assert loaded["spans"][0]["stage"] == "measure"
        assert "measure" in loaded["stage_seconds"]
