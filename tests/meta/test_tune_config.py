"""Tests for TuneConfig and the deprecated-kwargs shim."""

import dataclasses

import pytest

import repro
from repro import TuneConfig, tune
from repro.frontend import ops
from repro.meta import SearchStats, TensorCoreSketch, evolutionary_search
from repro.sim import SimGPU


@pytest.fixture(scope="module")
def gemm():
    return ops.matmul(128, 128, 128)


class TestTuneConfig:
    def test_defaults_match_old_signature(self):
        cfg = TuneConfig()
        assert cfg.trials == 32
        assert cfg.seed == 0
        assert cfg.allow_tensorize is True
        assert cfg.sketches is None
        assert cfg.validate is True

    def test_with_returns_modified_copy(self):
        cfg = TuneConfig()
        other = cfg.with_(trials=7)
        assert other.trials == 7
        assert cfg.trials == 32

    def test_from_kwargs_rejects_unknown(self):
        with pytest.raises(TypeError, match="unknown tuning option"):
            TuneConfig.from_kwargs(trails=8)  # typo'd name must not pass


class TestShim:
    def test_old_tune_kwargs_warn_and_work(self, gemm):
        with pytest.warns(DeprecationWarning, match="TuneConfig"):
            legacy = tune(gemm, SimGPU(), trials=4, seed=0)
        modern = tune(gemm, SimGPU(), TuneConfig(trials=4, seed=0))
        assert legacy.best_cycles == modern.best_cycles
        assert legacy.best_decisions == modern.best_decisions

    def test_old_positional_trials_warns(self, gemm):
        with pytest.warns(DeprecationWarning):
            legacy = tune(gemm, SimGPU(), 4)
        assert legacy.best_func is not None

    def test_evolutionary_search_shim(self, gemm):
        with pytest.warns(DeprecationWarning):
            legacy = evolutionary_search(
                gemm, TensorCoreSketch(), SimGPU(), trials=4, seed=0
            )
        modern = evolutionary_search(
            gemm, TensorCoreSketch(), SimGPU(), TuneConfig(trials=4, seed=0)
        )
        assert legacy.best_cycles == modern.best_cycles

    def test_new_style_does_not_warn(self, gemm, recwarn):
        tune(gemm, SimGPU(), TuneConfig(trials=2, seed=0))
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestPublicSurface:
    def test_top_level_exports(self):
        for name in (
            "tune",
            "TuneConfig",
            "TuneResult",
            "TuningSession",
            "TuningDatabase",
            "Telemetry",
            "workload_key",
        ):
            assert hasattr(repro, name), name


class TestSearchStatsMerge:
    def test_merge_adds_every_field(self):
        a = SearchStats()
        b = SearchStats()
        for i, f in enumerate(dataclasses.fields(SearchStats), start=1):
            setattr(a, f.name, i)
            setattr(b, f.name, 10 * i)
        a.merge(b)
        for i, f in enumerate(dataclasses.fields(SearchStats), start=1):
            assert getattr(a, f.name) == 11 * i

    def test_merge_returns_self(self):
        a = SearchStats(measured=1)
        assert a.merge(SearchStats(measured=2)) is a
        assert a.measured == 3
