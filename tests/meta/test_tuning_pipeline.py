"""Integration tests: the full §4 pipeline end to end.

The DESIGN.md integration criterion: tune a GEMM on the simulated GPU
and verify the best program (a) validates, (b) computes correctly
against NumPy, and (c) beats the untensorized configuration.
"""

import numpy as np
import pytest

from repro.frontend import ops
from repro.meta import TuneConfig, tune
from repro.runtime import random_args, run
from repro.schedule import verify
from repro.sim import SimCPU, SimGPU


@pytest.fixture(scope="module")
def gpu_result():
    return tune(ops.matmul(512, 512, 512), SimGPU(), TuneConfig(trials=16, seed=0))


class TestGpuPipeline:
    def test_best_is_valid(self, gpu_result):
        assert verify(gpu_result.best_func, SimGPU()) == []

    def test_best_is_correct(self, gpu_result):
        args = random_args(gpu_result.best_func)
        run(gpu_result.best_func, args)
        ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
        np.testing.assert_allclose(args["C"].astype(np.float32), ref, atol=0.3)

    def test_best_beats_untensorized(self, gpu_result):
        baseline = tune(
            ops.matmul(512, 512, 512),
            SimGPU(),
            TuneConfig(trials=16, seed=0, allow_tensorize=False),
        )
        assert gpu_result.best_cycles < baseline.best_cycles

    def test_best_uses_tensor_core(self, gpu_result):
        blocks = []
        from repro.schedule import Schedule

        sch = Schedule(gpu_result.best_func, record_trace=False)
        for rv in sch.get_blocks():
            intrin = sch.block_of(rv).annotations.get("tensorize")
            if intrin:
                blocks.append(intrin)
        assert "wmma_16x16x16_f16" in blocks

    def test_records_carry_decisions(self, gpu_result):
        assert gpu_result.best_decisions is not None
        assert all(r.cycles > 0 for r in gpu_result.records)


class TestCpuPipeline:
    def test_conv_int8_end_to_end(self):
        func = ops.conv2d(1, 18, 18, 16, 32, 3, 3, dtype="int8", acc_dtype="int32")
        result = tune(func, SimCPU(), TuneConfig(trials=10, seed=0))
        assert result.best_sketch == "cpu-sdot"
        assert verify(result.best_func, SimCPU()) == []
        args = random_args(result.best_func)
        run(result.best_func, args)
        A, W = args["A"].astype(np.int32), args["W"].astype(np.int32)
        ref = np.zeros((1, 16, 16, 32), dtype=np.int64)
        for r in range(3):
            for s in range(3):
                ref += np.einsum(
                    "nhwc,cf->nhwf", A[:, r : r + 16, s : s + 16, :], W[r, s]
                )
        np.testing.assert_array_equal(args["C"], ref.astype(np.int32))
