"""Exporters and the ``python -m repro.obs`` CLI, driven by a real tiny
tuning session — the tier-1 smoke test for the flight-recorder pipeline:
record → save → summarize/export/diff, with schema validation of the
Chrome trace.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import ObsConfig, TuneConfig, TuningSession
from repro.frontend import ops
from repro.obs import chrome_trace, diff_recordings, summarize
from repro.sim import SimGPU

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(scope="module")
def recording_path(tmp_path_factory):
    """Run a tiny recorded session and save the artifact."""
    tmp = tmp_path_factory.mktemp("obs")
    cfg = TuneConfig(
        trials=4, seed=0,
        obs=ObsConfig(enabled=True, sink_path=str(tmp / "run.jsonl")),
    )
    session = TuningSession(SimGPU(), cfg)
    session.add(ops.matmul(64, 64, 64), name="gemm64")
    report = session.run()
    assert report.obs["trials_recorded"] > 0
    path = str(tmp / "run.json")
    session.save_recording(path)
    return path


@pytest.fixture(scope="module")
def recording(recording_path):
    with open(recording_path) as f:
        return json.load(f)


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True, text=True, env=env,
    )


class TestChromeTrace:
    def test_schema(self, recording):
        doc = chrome_trace(recording)
        events = doc["traceEvents"]
        assert events
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert spans and instants
        for e in spans:
            assert set(e) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert e["ts"] >= 0 and e["dur"] >= 0
        for e in instants:
            assert set(e) >= {"name", "ph", "ts", "pid", "tid"}
        # Thread-name metadata present and session hierarchy exported.
        assert any(e["ph"] == "M" and e["name"] == "thread_name" for e in events)
        assert any(e["name"] == "session" for e in spans)
        assert any(e["args"].get("parent_id") is not None for e in spans)

    def test_stable_under_reexport(self, recording):
        a = json.dumps(chrome_trace(recording), sort_keys=True)
        b = json.dumps(chrome_trace(recording), sort_keys=True)
        assert a == b


class TestSummarize:
    def test_mentions_stages_tasks_and_trials(self, recording):
        text = summarize(recording)
        assert "flight recording (repro.obs/1)" in text
        assert "gemm64" in text
        assert "evolve" in text and "measure" in text
        assert "replayable traces" in text

    def test_task_seconds_track_wall_clock(self, recording):
        """The per-task table counts leaf spans only — summed seconds
        must stay in the same order of magnitude as the true wall time,
        not multiply per hierarchy level."""
        text = summarize(recording)
        spans = recording["telemetry"]["spans"]
        session = next(s for s in spans if s["stage"] == "session")
        line = next(l for l in text.splitlines() if l.startswith("gemm64"))
        task_seconds = float(line.split()[1])
        assert task_seconds <= session["duration"] * 1.05


class TestDiff:
    def test_self_diff_is_all_same(self, recording):
        text = diff_recordings(recording, recording, "a", "b")
        assert "same" in text
        assert "worse" not in text and "better" not in text


class TestCli:
    def test_summarize_command(self, recording_path):
        proc = _run_cli("summarize", recording_path)
        assert proc.returncode == 0, proc.stderr
        assert "flight recording" in proc.stdout
        assert "gemm64" in proc.stdout

    def test_export_chrome_command(self, recording_path, tmp_path):
        out = str(tmp_path / "timeline.json")
        proc = _run_cli("export", "--chrome", recording_path, "-o", out)
        assert proc.returncode == 0, proc.stderr
        doc = json.load(open(out))
        assert doc["traceEvents"]
        assert all(
            {"ts", "pid", "tid", "ph"} <= set(e)
            for e in doc["traceEvents"]
            if e["ph"] != "M"  # metadata records carry no timestamp
        )
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_diff_command(self, recording_path):
        proc = _run_cli("diff", recording_path, recording_path)
        assert proc.returncode == 0, proc.stderr
        assert "diff:" in proc.stdout

    def test_missing_file_exits_2(self):
        proc = _run_cli("summarize", "/nonexistent/run.json")
        assert proc.returncode == 2
        assert "error" in proc.stderr

    def test_malformed_recording_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        proc = _run_cli("summarize", str(bad))
        assert proc.returncode == 2
        assert "malformed" in proc.stderr
