"""Unit tests for ``repro.obs.metrics`` — the typed, thread-safe
metrics layer behind the serving stack.

The contracts under test: staged writes never lose an increment (under
threads or interleaved reads), ``observe_many`` is observationally
equivalent to N ``observe`` calls, label cardinality collapses onto the
overflow series instead of growing, and the three read views
(snapshot / delta / Prometheus text) agree with each other.
"""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MAX_LABEL_SETS,
    OVERFLOW_LABEL,
    MetricsRegistry,
    fold_cache_delta,
    fold_evaluator_counters,
    quantile_from_buckets,
    render_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests")
        c.inc()
        c.inc(4.0)
        assert c.value == 5.0

    def test_negative_increment_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_staged_folds_exact_under_threads(self):
        reg = MetricsRegistry()
        c = reg.counter("hammered_total")
        per_thread, threads = 5000, 8
        stop = threading.Event()

        def writer():
            for _ in range(per_thread):
                c.inc()

        def reader():
            # Interleaved reads force folds mid-stream; none may lose
            # staged increments.
            while not stop.is_set():
                assert c.value <= per_thread * threads

        workers = [threading.Thread(target=writer) for _ in range(threads)]
        observer = threading.Thread(target=reader)
        observer.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        observer.join()
        assert c.value == per_thread * threads

    def test_inline_fold_bounds_staging(self):
        from repro.obs.metrics import _STAGE_LIMIT

        reg = MetricsRegistry()
        c = reg.counter("bounded_total")
        solo = c.labels()
        for _ in range(_STAGE_LIMIT + 10):
            solo.inc()
        # The inline fold at the stage limit keeps the buffer bounded
        # without waiting for a reader.
        assert len(solo._staged) < _STAGE_LIMIT
        assert c.value == _STAGE_LIMIT + 10


class TestHistogram:
    def test_observe_many_equals_n_observes(self):
        reg = MetricsRegistry()
        one = reg.histogram("a_seconds", buckets=(0.1, 1.0, 10.0), window=8)
        many = reg.histogram("b_seconds", buckets=(0.1, 1.0, 10.0), window=8)
        values = [0.05, 0.5, 5.0, 50.0, 0.5, 0.09, 2.0]
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert one.labels().count == many.labels().count
        assert one.labels().sum == pytest.approx(many.labels().sum)
        assert one.labels().cumulative() == many.labels().cumulative()
        assert one.labels().window_values() == many.labels().window_values()

    def test_window_keeps_most_recent(self):
        reg = MetricsRegistry()
        h = reg.histogram("w_seconds", buckets=(1.0,), window=4)
        h.observe_many([float(i) for i in range(10)])
        # A maxlen window must keep the chronological tail, not the
        # sorted extremes.
        assert h.labels().window_values() == [6.0, 7.0, 8.0, 9.0]

    def test_cumulative_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("le_seconds", buckets=(1.0, 2.0))
        h.observe_many([0.5, 1.0, 1.5, 3.0])
        cumulative = h.labels().cumulative()
        # value == bound lands in that bucket (Prometheus `le`).
        assert cumulative == [(1.0, 2), (2.0, 3), (math.inf, 4)]

    def test_quantiles_window_and_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("q_seconds", buckets=DEFAULT_LATENCY_BUCKETS)
        assert h.labels().window_quantile(0.5) is None
        assert h.labels().quantile(0.5) is None
        h.observe_many([0.001] * 50 + [0.1] * 50)
        assert h.labels().window_quantile(0.5) in (0.001, 0.1)
        assert 0.0005 < h.labels().quantile(0.5) <= 0.1

    def test_staged_observes_exact_under_threads(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", buckets=(1.0,), window=16)
        per_thread, threads = 4000, 6

        def writer():
            for _ in range(per_thread):
                h.observe(0.5)

        workers = [threading.Thread(target=writer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert h.labels().count == per_thread * threads
        assert h.labels().cumulative()[0] == (1.0, per_thread * threads)


class TestQuantileFromBuckets:
    def test_interpolates_inside_bucket(self):
        rows = [(1.0, 0), (2.0, 10), (math.inf, 10)]
        assert quantile_from_buckets(rows, 0.5) == pytest.approx(1.5)

    def test_inf_bucket_returns_last_finite_bound(self):
        rows = [(1.0, 0), (math.inf, 10)]
        assert quantile_from_buckets(rows, 0.99) == 1.0

    def test_empty_returns_none(self):
        assert quantile_from_buckets([], 0.5) is None
        assert quantile_from_buckets([(1.0, 0), (math.inf, 0)], 0.5) is None


class TestLabels:
    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("l_total", labels=("outcome",))
        with pytest.raises(ValueError):
            fam.labels(wrong="hit")
        with pytest.raises(ValueError):
            fam.inc()  # labeled family has no solo child

    def test_cardinality_collapses_to_overflow(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", labels=("key",))
        for i in range(MAX_LABEL_SETS + 40):
            fam.labels(key=f"k{i}").inc()
        children = fam.children()
        assert len(children) == MAX_LABEL_SETS + 1
        overflow = children[(OVERFLOW_LABEL,)]
        assert overflow.value == 40  # every post-cap label collapsed
        total = sum(child.value for child in children.values())
        assert total == MAX_LABEL_SETS + 40

    def test_reregistration_same_shape_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("again_total", labels=("k",))
        b = reg.counter("again_total", labels=("k",))
        assert a is b

    def test_reregistration_shape_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("shape_total", labels=("k",))
        with pytest.raises(ValueError):
            reg.histogram("shape_total")
        with pytest.raises(ValueError):
            reg.counter("shape_total", labels=("other",))


class TestRegistryReads:
    def test_snapshot_delta_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("d_total", labels=("outcome",))
        h = reg.histogram("d_seconds", buckets=(1.0,))
        g = reg.gauge("d_depth")
        c.labels(outcome="hit").inc(3)
        h.observe(0.5)
        g.set(7)
        before = reg.snapshot()
        c.labels(outcome="hit").inc(2)
        c.labels(outcome="miss").inc(1)
        h.observe(2.0)
        g.set(9)
        delta = reg.delta_since(before)
        assert delta["metrics"]["d_total"]["series"] == {
            "outcome=hit": 2.0,
            "outcome=miss": 1.0,
        }
        d_hist = delta["metrics"]["d_seconds"]["series"][""]
        assert d_hist["count"] == 1
        assert d_hist["sum"] == pytest.approx(2.0)
        assert delta["metrics"]["d_depth"]["series"][""] == 9.0

    def test_delta_drops_idle_series(self):
        reg = MetricsRegistry()
        c = reg.counter("idle_total")
        c.inc(5)
        before = reg.snapshot()
        delta = reg.delta_since(before)
        assert "idle_total" not in delta["metrics"]

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry(namespace="repro")
        c = reg.counter("p_total", "help text", labels=("outcome",))
        c.labels(outcome="hit").inc(2)
        h = reg.histogram("p_seconds", buckets=(1.0, 2.0))
        h.observe_many([0.5, 1.5, 5.0])
        text = reg.prometheus_text()
        assert "# TYPE repro_p_total counter" in text
        assert 'repro_p_total{outcome="hit"} 2' in text
        assert 'repro_p_seconds_bucket{le="1"} 1' in text
        assert 'repro_p_seconds_bucket{le="2"} 2' in text
        assert 'repro_p_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_p_seconds_count 3" in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        fam = reg.counter("e_total", labels=("name",))
        fam.labels(name='sa"w\\tooth').inc()
        text = reg.prometheus_text()
        assert 'name="sa\\"w\\\\tooth"' in text

    def test_series_key_roundtrips_structural_characters(self):
        # A label value containing ',' or '=' (e.g. a cache or backend
        # name) must not corrupt the parsed label pairs or the
        # exposition output.
        from repro.obs.metrics import _parse_series_key, _series_key

        awkward = 'shape=64,128\\mix"ed'
        key = _series_key(("name",), (awkward,))
        assert _parse_series_key(key) == [("name", awkward)]
        reg = MetricsRegistry()
        reg.counter("awk_total", labels=("name",)).labels(name=awkward).inc()
        text = reg.prometheus_text()
        # One series line, with the value intact modulo Prometheus's
        # own backslash/quote escaping.
        expected = awkward.replace("\\", "\\\\").replace('"', '\\"')
        assert f'repro_awk_total{{name="{expected}"}} 1' in text

    def test_gauge_fn_family_sampled_at_read(self):
        reg = MetricsRegistry()
        state = {"a": 0.5}
        reg.gauge_fn("rates", "per-cache rates", lambda: state)
        assert reg.snapshot()["metrics"]["rates"]["series"] == {"name=a": 0.5}
        state["b"] = 0.25
        assert reg.snapshot()["metrics"]["rates"]["series"] == {
            "name=a": 0.5,
            "name=b": 0.25,
        }

    def test_gauge_fn_name_collision_raises(self):
        # snapshot() merges both family dicts, so a shared name would
        # silently shadow one family from every read view.
        reg = MetricsRegistry()
        reg.counter("taken_total")
        with pytest.raises(ValueError):
            reg.gauge_fn("taken_total", "", lambda: {})
        reg.gauge_fn("rates", "", lambda: {})
        with pytest.raises(ValueError):
            reg.counter("rates")
        # Re-binding the same callback-family name stays allowed.
        reg.gauge_fn("rates", "", lambda: {"a": 1.0})
        assert reg.snapshot()["metrics"]["rates"]["series"] == {"name=a": 1.0}

    def test_callback_gauge_errors_read_as_zero(self):
        reg = MetricsRegistry()
        g = reg.gauge("dead_depth", fn=lambda: 1 / 0)
        assert g.value == 0.0


class TestCollectors:
    def test_collector_runs_before_every_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("staged_total")
        staged = []
        reg.register_collector(lambda: c.inc(len(staged)) or staged.clear())
        staged.extend([1, 2, 3])
        assert reg.snapshot()["metrics"]["staged_total"]["series"][""] == 3.0
        # prometheus_text and delta_since read through snapshot() too.
        staged.extend([1])
        assert "staged_total 4" in reg.prometheus_text()

    def test_collector_exceptions_are_swallowed(self):
        reg = MetricsRegistry()
        reg.counter("fine_total").inc()

        def broken():
            raise RuntimeError("collector died")

        reg.register_collector(broken)
        snap = reg.snapshot()  # must not raise
        assert snap["metrics"]["fine_total"]["series"][""] == 1.0


class TestDisabledRegistry:
    def test_everything_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("n_total", labels=("outcome",))
        h = reg.histogram("n_seconds")
        g = reg.gauge("n_depth")
        c.labels(outcome="hit").inc()
        h.observe(1.0)
        h.observe_many([1.0, 2.0])
        g.set(3)
        reg.gauge_fn("n_rates", "", lambda: {"a": 1.0})
        reg.register_collector(lambda: 1 / 0)
        snap = reg.snapshot()
        assert snap["metrics"] == {}
        assert reg.prometheus_text() == ""

    def test_folds_are_noops_when_disabled(self):
        reg = MetricsRegistry(enabled=False)
        fold_cache_delta(reg, {"memo": {"hits": 3}})
        fold_evaluator_counters(reg, "pool", 4, {"batches": 2})
        assert reg.snapshot()["metrics"] == {}


class TestFolds:
    def test_fold_cache_delta_is_canonical_spelling(self):
        reg = MetricsRegistry()
        fold_cache_delta(
            reg,
            {"memo": {"hits": 3, "misses": 1, "evictions": 0}},
        )
        snap = reg.snapshot()["metrics"]
        assert snap["cache_hits_total"]["series"] == {"name=memo": 3.0}
        assert snap["cache_misses_total"]["series"] == {"name=memo": 1.0}
        assert "name=memo" not in snap.get(
            "cache_evictions_total", {}
        ).get("series", {})

    def test_fold_evaluator_counters(self):
        reg = MetricsRegistry()
        fold_evaluator_counters(
            reg, "process-pool", 4, {"ipc_batches": 2, "evaluated": 64}
        )
        snap = reg.snapshot()["metrics"]
        assert any(name.startswith("evaluator_") for name in snap)
