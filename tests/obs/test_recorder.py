"""Tests for the flight recorder: event stream, provenance ledger,
lineage, replay, callbacks, sampling, bounding, and the off switch.
"""

import json
import os
import threading

import pytest

from repro.meta import ObsConfig, Recorder, TuneConfig, evolutionary_search, tune
from repro.meta.sketch import TensorCoreSketch
from repro.obs import (
    EventStream,
    JsonlSink,
    Rejection,
    TrialEvent,
    load_recording,
    replay_trial,
)
from repro.sim import SimGPU

from ..common import build_matmul


def _rejection(n: int) -> Rejection:
    return Rejection(ts=float(n), task="t", sketch="s", generation=1,
                     stage="invalid", code="TIR105")


def _trial(n: int) -> TrialEvent:
    return TrialEvent(ts=float(n), task="t", sketch="s", generation=1,
                      trial_id=n, predicted=None, cycles=100.0, seconds=0.1,
                      bound="compute")


class TestEventStream:
    def test_bounded_ring_drops_oldest(self):
        stream = EventStream(max_events=4)
        for n in range(10):
            stream.emit(_trial(n))
        assert len(stream) == 4
        stats = stream.stats()
        assert stats == {"emitted": 10, "kept": 4, "sampled_out": 0, "dropped": 6}
        assert [e["trial_id"] for e in stream.events()] == [6, 7, 8, 9]

    def test_sampling_is_deterministic_and_count_based(self):
        def kept_ids(rate):
            stream = EventStream(sample_rate=rate)
            kept = []
            for n in range(10):
                if stream.emit(_rejection(n)):
                    kept.append(n)
            return kept, stream.stats()

        kept_a, stats_a = kept_ids(0.5)
        kept_b, stats_b = kept_ids(0.5)
        assert kept_a == kept_b  # no RNG anywhere
        assert len(kept_a) == 5
        assert stats_a["sampled_out"] == 5
        assert stats_a == stats_b

    def test_sampling_never_touches_unsampled_kinds(self):
        stream = EventStream(sample_rate=0.0)
        stream.emit(_rejection(1))
        stream.emit(_trial(1))
        kinds = [e["kind"] for e in stream.events()]
        assert kinds == ["trial"]  # rejection sampled out, trial kept

    def test_concurrent_emit_loses_nothing(self):
        stream = EventStream(max_events=100000)
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            for n in range(300):
                stream.emit(_trial(n))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert stream.stats()["emitted"] == 1800
        assert len(stream) == 1800


class TestJsonlSink:
    def test_lines_parse_and_reopen_after_close(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        sink.write({"kind": "a"})
        sink.close()
        sink.write({"kind": "b"})  # reopens in append mode
        sink.close()
        lines = [json.loads(l) for l in open(path)]
        assert [l["kind"] for l in lines] == ["a", "b"]
        assert sink.lines_written == 2


class TestRecorderOffSwitch:
    def test_disabled_recorder_is_a_noop(self):
        rec = Recorder(ObsConfig(enabled=False))
        assert not rec.enabled
        assert rec.trial(task="t", workload="w", sketch="s", generation=1,
                         parent=None, decisions=[]) is None
        rec.rejection("t", "s", 1, "invalid", "TIR105")
        rec.best_improved("t", 1, 100.0, None)
        rec.generation_end("t", "s", 1, 4, 2, 100.0)
        rec.model_update(8, True)
        rec.record_cache_delta({"x": {"hits": 1, "misses": 1}})
        assert rec.trials == []
        assert rec.stream.stats()["emitted"] == 0

    def test_recording_does_not_change_search_results(self):
        """The recorder consumes no search RNG: recorded and unrecorded
        runs must find the identical best program."""
        func = build_matmul(128, 128, 128, dtype="float16")
        cfg = TuneConfig(trials=6, population=4, seed=3)
        plain = evolutionary_search(func, TensorCoreSketch(), SimGPU(), cfg)
        recorded = evolutionary_search(
            func, TensorCoreSketch(), SimGPU(),
            cfg.with_(obs=ObsConfig(enabled=True)),
        )
        assert recorded.best_cycles == plain.best_cycles
        assert recorded.best_decisions == plain.best_decisions
        assert recorded.stats.measured == plain.stats.measured


@pytest.fixture(scope="module")
def recorded_search():
    """One recorded evolutionary search, shared by the ledger tests."""
    func = build_matmul(128, 128, 128, dtype="float16")
    rec = Recorder(ObsConfig(enabled=True))
    result = evolutionary_search(
        func, TensorCoreSketch(), SimGPU(),
        TuneConfig(trials=8, population=6, seed=0), recorder=rec,
    )
    return func, rec, result


class TestProvenanceLedger:
    def test_every_measured_trial_is_replayable(self, recorded_search):
        func, rec, result = recorded_search
        measured = [t for t in rec.trials if t.cycles is not None]
        assert len(measured) == result.stats.measured
        for record in measured:
            assert record.trace is not None
            assert record.structural_hash is not None
            rebuilt = replay_trial(record, func)
            # replay_trial itself asserts the hash; double-check anyway.
            from repro.tir import structural_hash
            assert structural_hash(rebuilt) == record.structural_hash

    def test_ledger_matches_best_result(self, recorded_search):
        func, rec, result = recorded_search
        measured = [t for t in rec.trials if t.cycles is not None]
        best = min(measured, key=lambda t: t.cycles)
        assert best.cycles == result.best_cycles
        rebuilt = replay_trial(best, func)
        from repro.tir import structural_hash
        assert structural_hash(rebuilt) == structural_hash(result.best_func)

    def test_lineage_references_existing_trials(self, recorded_search):
        _, rec, _ = recorded_search
        ids = {t.trial_id for t in rec.trials}
        for t in rec.trials:
            if t.parent is not None:
                assert t.parent in ids
                assert t.parent < t.trial_id
        # With mutation probability 0.7 and several generations, at
        # least one measured candidate descends from an elite.
        assert any(t.parent is not None for t in rec.trials)

    def test_trial_metadata(self, recorded_search):
        _, rec, _ = recorded_search
        for t in rec.trials:
            assert t.task == "matmul"
            assert t.sketch.startswith("tensor-core")
            assert t.workload  # database-compatible workload key
            assert t.generation >= 1
            assert t.decisions

    def test_hash_mismatch_rejected(self, recorded_search):
        func, rec, _ = recorded_search
        record = next(t for t in rec.trials if t.trace is not None)
        doc = record.to_json()
        doc["structural_hash"] = 12345
        with pytest.raises(ValueError, match="hash"):
            replay_trial(doc, func)

    def test_trial_without_trace_rejected(self, recorded_search):
        func, rec, _ = recorded_search
        doc = rec.trials[0].to_json()
        doc["trace"] = None
        with pytest.raises(ValueError, match="no serialized trace"):
            replay_trial(doc, func)


class TestCallbacksAndArtifact:
    def test_live_callbacks_fire(self, tmp_path):
        generations, bests = [], []
        cfg = TuneConfig(
            trials=4, population=4, seed=0,
            obs=ObsConfig(
                enabled=True,
                sink_path=str(tmp_path / "run.jsonl"),
                on_generation=generations.append,
                on_best_improved=bests.append,
            ),
        )
        func = build_matmul(64, 64, 64, dtype="float16")
        result = tune(func, SimGPU(), cfg)
        assert result.best_func is not None
        assert generations and all(g["kind"] == "generation" for g in generations)
        # tune() searches each sketch separately; the curve is strictly
        # decreasing within a search and restarts (previous=None) when
        # the next sketch's search begins.
        assert bests
        assert bests[0]["previous"] is None
        for prev, cur in zip(bests, bests[1:]):
            if cur["previous"] is None:
                continue  # new search started
            assert cur["cycles"] < prev["cycles"]
            assert cur["previous"] == pytest.approx(prev["cycles"])
        # Sink holds one parseable line per kept event.
        lines = [json.loads(l) for l in open(tmp_path / "run.jsonl")]
        assert lines and all("kind" in l for l in lines)

    def test_save_and_load_roundtrip(self, tmp_path, recorded_search):
        _, rec, _ = recorded_search
        path = str(tmp_path / "run.json")
        doc = rec.save(path)
        loaded = load_recording(path)
        assert loaded["schema"] == "repro.obs/1"
        assert loaded["trials"] == json.loads(json.dumps(doc["trials"]))
        assert loaded["event_stats"]["emitted"] == doc["event_stats"]["emitted"]
        # Atomic write leaves no temp files behind.
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_record_traces_off_skips_provenance(self):
        func = build_matmul(64, 64, 64, dtype="float16")
        rec = Recorder(ObsConfig(enabled=True, record_traces=False))
        evolutionary_search(
            func, TensorCoreSketch(), SimGPU(),
            TuneConfig(trials=4, population=4, seed=0), recorder=rec,
        )
        measured = [t for t in rec.trials if t.cycles is not None]
        assert measured
        assert all(t.trace is None for t in measured)
        assert all(t.structural_hash is not None for t in measured)
