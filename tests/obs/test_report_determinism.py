"""Deterministic, atomic reporting: identical runs must produce
byte-identical report documents, and a crashed writer must never leave a
truncated file behind.
"""

import itertools
import json
import os

import pytest

from repro.meta import Telemetry
from repro.meta.session import SessionReport, TaskReport


def _fake_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


def _populate(t: Telemetry):
    with t.span("session") as root:
        t.set_root(root)
        with t.span("task", task="gemm"):
            t.add("validate", 1.0, "gemm", start=2.0)
            t.add("measure", 1.0, "gemm", start=4.0)
        t.set_root(None)
    t.count("b_counter")
    t.count("a_counter", 2)


class TestTelemetryDeterminism:
    def test_identical_runs_byte_identical_reports(self):
        reports = []
        for _ in range(2):
            t = Telemetry(clock=_fake_clock())
            _populate(t)
            reports.append(t.to_json(sort_keys=True))
        assert reports[0] == reports[1]

    def test_report_ordering(self):
        t = Telemetry(clock=_fake_clock())
        _populate(t)
        rep = t.report()
        assert list(rep["counters"]) == sorted(rep["counters"])
        starts = [s["start"] for s in rep["spans"]]
        assert starts == sorted(starts)
        assert list(rep["stage_seconds"]) == sorted(rep["stage_seconds"])

    def test_add_with_explicit_start_places_span(self):
        t = Telemetry(clock=_fake_clock())
        t.add("validate", 5.0, "gemm", start=100.0)
        (span,) = t.spans
        assert span.start == 100.0
        assert span.duration == 5.0

    def test_add_without_start_backdates_from_now(self):
        # clock() returns 0.0 on the single call add() makes.
        t = Telemetry(clock=iter([10.0]).__next__)
        t.add("validate", 4.0, "gemm")
        (span,) = t.spans
        assert span.start == pytest.approx(6.0)

    def test_hierarchy_exported_in_report(self):
        t = Telemetry(clock=_fake_clock())
        _populate(t)
        spans = {s["stage"]: s for s in t.report()["spans"]}
        assert spans["session"]["parent_id"] is None
        assert spans["task"]["parent_id"] == spans["session"]["span_id"]
        assert spans["validate"]["parent_id"] == spans["task"]["span_id"]
        # Flat view counts leaves only, so totals track wall time.
        assert t.stage_seconds() == {"measure": 1.0, "validate": 1.0}


def _report() -> SessionReport:
    return SessionReport(
        target="sim-gpu",
        workers=2,
        tasks=[TaskReport(name="gemm", key="k", status="searched", weight=1.0)],
        totals={"tasks_searched": 1},
        cache_stats={"b": {"hits": 1}, "a": {"hits": 2}},
    )


class TestSessionReportWrite:
    def test_atomic_write_and_sorted_keys(self, tmp_path):
        path = tmp_path / "report.json"
        _report().write(str(path))
        text = path.read_text()
        doc = json.loads(text)
        assert doc["target"] == "sim-gpu"
        # sort_keys=True: serialized key order is sorted at every level.
        assert text == json.dumps(doc, indent=1, sort_keys=True)
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_identical_reports_write_identical_bytes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        _report().write(str(a))
        _report().write(str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_failed_write_leaves_no_partial_file(self, tmp_path, monkeypatch):
        report = _report()
        path = tmp_path / "report.json"

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            report.write(str(path))
        assert not path.exists()
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []
