"""Concurrency stress tests for the Telemetry span/counter collector.

One Telemetry is shared by every worker of a parallel TuningSession, so
spans, counters and the hierarchy links must survive unsynchronized
hammering from many threads without losing or corrupting records.
"""

import threading

import pytest

from repro.meta import Telemetry


N_THREADS = 8
N_ITERS = 200


class TestConcurrentStress:
    def _hammer(self, t: Telemetry, barrier: threading.Barrier):
        barrier.wait()
        for i in range(N_ITERS):
            with t.span("outer", task="w"):
                with t.span("inner", task="w"):
                    pass
            t.add("accumulated", 0.001, task="w")
            t.count("ops")
            t.count("weighted", 2)

    def test_no_lost_spans_or_counts(self):
        t = Telemetry()
        barrier = threading.Barrier(N_THREADS)
        threads = [
            threading.Thread(target=self._hammer, args=(t, barrier))
            for _ in range(N_THREADS)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        total = N_THREADS * N_ITERS
        assert len(t.spans) == 3 * total
        assert t.counters["ops"] == total
        assert t.counters["weighted"] == 2 * total
        assert t.threads_used("inner") == N_THREADS

    def test_span_ids_unique_and_parents_resolve(self):
        t = Telemetry()
        barrier = threading.Barrier(N_THREADS)
        threads = [
            threading.Thread(target=self._hammer, args=(t, barrier))
            for _ in range(N_THREADS)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        ids = [s.span_id for s in t.spans]
        assert len(ids) == len(set(ids))
        known = set(ids)
        by_id = {s.span_id: s for s in t.spans}
        for s in t.spans:
            if s.parent_id is not None:
                assert s.parent_id in known
            # Nesting is per-thread: every inner span's parent is an
            # outer span recorded on the same thread.
            if s.stage == "inner":
                assert by_id[s.parent_id].stage == "outer"
                assert by_id[s.parent_id].thread == s.thread

    def test_leaf_only_aggregation_under_concurrency(self):
        """stage_seconds counts leaves only: 'outer' spans all have an
        'inner' child, so only inner/accumulated seconds appear."""
        t = Telemetry()
        barrier = threading.Barrier(4)
        threads = [
            threading.Thread(target=self._hammer, args=(t, barrier))
            for _ in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        stages = t.stage_seconds()
        assert "outer" not in stages  # container, never a leaf
        assert "inner" in stages and "accumulated" in stages
        assert stages["accumulated"] == pytest.approx(4 * N_ITERS * 0.001)

    def test_root_fallback_attaches_worker_spans(self):
        """Spans recorded on a thread with an empty span stack attach to
        the declared root — how session workers join the hierarchy."""
        t = Telemetry()
        with t.span("session") as root_id:
            t.set_root(root_id)
            done = []

            def worker():
                with t.span("task", task="w"):
                    pass
                done.append(True)

            th = threading.Thread(target=worker)
            th.start()
            th.join()
            t.set_root(None)
        assert done
        task_span = next(s for s in t.spans if s.stage == "task")
        session_span = next(s for s in t.spans if s.stage == "session")
        assert task_span.parent_id == session_span.span_id
        assert session_span.parent_id is None

    def test_concurrent_report_while_writing(self):
        """report()/stage_seconds() snapshots must not crash or corrupt
        while writers are active."""
        t = Telemetry()
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                with t.span("stage", task="x"):
                    pass

        def reader():
            try:
                while not stop.is_set():
                    rep = t.report()
                    assert isinstance(rep["spans"], list)
                    t.stage_seconds()
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for th in threads:
            th.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for th in threads:
            th.join()
        stop_timer.cancel()
        assert errors == []
