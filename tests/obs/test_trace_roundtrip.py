"""Trace JSON round-trip: serialize → deserialize → replay must rebuild
a structurally identical program, for every default sketch.

This is the provenance contract of the flight recorder: a recorded
best program can always be re-derived from its stored trace alone.
"""

import json

import pytest

from repro.meta import (
    CpuScalarSketch,
    CpuSdotSketch,
    GpuScalarSketch,
    TensorCoreSketch,
)
from repro.schedule import Schedule, ScheduleError
from repro.schedule.trace import Instruction, Trace
from repro.tir import Cast, IRBuilder, structural_hash

from ..common import build_matmul


def qgemm_func(n=64):
    b = IRBuilder("qgemm")
    A = b.arg_buffer("A", (n, n), "int8")
    B = b.arg_buffer("B", (n, n), "int8")
    C = b.arg_buffer("C", (n, n), "int32")
    with b.grid(n, n, n) as (i, j, k):
        with b.block("C") as blk:
            vi = blk.spatial(n, i)
            vj = blk.spatial(n, j)
            vk = blk.reduce(n, k)
            with blk.init():
                b.store(C, (vi, vj), 0)
            b.store(
                C, (vi, vj), C[vi, vj] + Cast("int32", A[vi, vk]) * Cast("int32", B[vk, vj])
            )
    return b.finish()


SKETCH_CASES = [
    pytest.param(
        TensorCoreSketch(), lambda: build_matmul(128, 128, 128, dtype="float16"),
        id="tensor-core",
    ),
    pytest.param(
        GpuScalarSketch(), lambda: build_matmul(64, 64, 64), id="gpu-scalar"
    ),
    pytest.param(CpuSdotSketch(), lambda: qgemm_func(64), id="cpu-sdot"),
    pytest.param(
        CpuScalarSketch(), lambda: build_matmul(64, 64, 64), id="cpu-scalar"
    ),
]


def _apply_recorded(sketch, make_func):
    """Apply the sketch with trace recording on, trying a few seeds (some
    samples violate primitive preconditions and raise)."""
    for seed in range(16):
        sch = Schedule(make_func(), seed=seed, record_trace=True)
        try:
            sketch.apply(sch)
        except ScheduleError:
            continue
        return sch
    pytest.fail(f"no seed in 0..15 applies {sketch.name}")


class TestRoundTrip:
    @pytest.mark.parametrize("sketch,make_func", SKETCH_CASES)
    def test_roundtrip_hash_identical(self, sketch, make_func):
        sch = _apply_recorded(sketch, make_func)
        assert sch.trace is not None and len(sch.trace) > 0

        # Through actual JSON text, not just dicts.
        payload = json.dumps(sch.trace.to_json(), sort_keys=True)
        rebuilt_trace = Trace.from_json(json.loads(payload))
        assert len(rebuilt_trace) == len(sch.trace)

        fresh = Schedule(make_func(), seed=0, record_trace=False)
        rebuilt_trace.apply_to(fresh)
        assert structural_hash(fresh.func) == structural_hash(sch.func)

    @pytest.mark.parametrize("sketch,make_func", SKETCH_CASES)
    def test_serialized_form_tags_random_variables(self, sketch, make_func):
        sch = _apply_recorded(sketch, make_func)
        doc = sch.trace.to_json()
        text = json.dumps(doc)
        assert "$block" in text or "$loop" in text
        # Every instruction serializes to plain JSON types.
        json.loads(text)

    def test_instruction_roundtrip_preserves_decision(self):
        inst = Instruction(
            "sample_perfect_tile",
            inputs=[],
            attrs={"n": 4, "max_innermost_factor": 8},
            decision=[2, 4, 2, 4],
        )
        back = Instruction.from_json(json.loads(json.dumps(inst.to_json())))
        assert back.name == inst.name
        assert back.attrs == inst.attrs
        assert back.decision == [2, 4, 2, 4]
        assert back.is_sampling

    def test_unknown_instruction_rejected_on_replay(self):
        trace = Trace([Instruction("not_a_primitive", [])])
        sch = Schedule(build_matmul(16, 16, 16), record_trace=False)
        with pytest.raises(ScheduleError, match="cannot replay"):
            trace.apply_to(sch)
