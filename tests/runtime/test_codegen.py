"""Tests for the TensorIR → Python compiler and executor."""

import numpy as np
import pytest

from repro.runtime import Executor, alloc_args, compile_func, random_args, run
from repro.schedule import Schedule
from repro.tir import Cast, IRBuilder, Select, Var, call, const

from ..common import build_matmul


class TestCodegenBasics:
    def test_source_is_inspectable(self):
        compiled = compile_func(build_matmul(8, 8, 8))
        assert "def __kernel(" in compiled.source
        assert "for " in compiled.source

    def test_wrong_arity_rejected(self):
        compiled = compile_func(build_matmul(8, 8, 8))
        a = np.zeros((8, 8), dtype=np.float32)
        with pytest.raises(TypeError):
            compiled(a, a)

    def test_wrong_shape_rejected(self):
        compiled = compile_func(build_matmul(8, 8, 8))
        a = np.zeros((8, 8), dtype=np.float32)
        bad = np.zeros((4, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            compiled(bad, a, a)

    def test_executor_reuses_compilation(self):
        func = build_matmul(8, 8, 8)
        ex = Executor(func)
        for seed in (0, 1):
            args = random_args(func, seed=seed)
            ex(args)
            ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
            np.testing.assert_allclose(args["C"], ref, rtol=1e-4)

    def test_alloc_args_shapes_and_dtypes(self):
        func = build_matmul(8, 8, 8, dtype="float16")
        args = alloc_args(func, fill=2.0)
        assert args["A"].dtype == np.float16
        assert args["A"].shape == (8, 8)
        assert float(args["A"][0, 0]) == 2.0


class TestCompileCache:
    def test_structural_duplicates_share_compilation(self):
        from repro.cache import all_caches

        cache = all_caches()["runtime.compile"]
        cache.clear()
        # Two builds of the same workload hash identically; the second
        # compile must be a cache hit returning the same object.
        first = compile_func(build_matmul(8, 8, 8))
        again = compile_func(build_matmul(8, 8, 8))
        assert again is first
        stats = cache.stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_vectorize_flag_is_part_of_the_key(self):
        from repro.cache import all_caches

        all_caches()["runtime.compile"].clear()
        func = build_matmul(8, 8, 8)
        assert compile_func(func, vectorize=True) is not compile_func(
            func, vectorize=False
        )

    def test_cache_hits_surface_in_cache_stats(self):
        from repro.cache import all_caches, cache_stats

        all_caches()["runtime.compile"].clear()
        compile_func(build_matmul(4, 4, 4))
        compile_func(build_matmul(4, 4, 4))
        assert cache_stats()["runtime.compile"]["hits"] >= 1


class TestCodegenConstructs:
    def test_predicate_guard(self):
        # Non-divisible split: the predicated tail must not write OOB.
        sch = Schedule(build_matmul(10, 8, 8))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.split(i, [None, 4])
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-5)

    def test_select_is_lazy(self):
        # Select guards an out-of-bounds load: must not evaluate it.
        b = IRBuilder("guarded")
        A = b.arg_buffer("A", (4,), "float32")
        C = b.arg_buffer("C", (8,), "float32")
        with b.grid(8) as i:
            with b.block("C") as blk:
                vi = blk.spatial(8, i)
                from repro.tir import min_expr

                safe = min_expr(vi, 3)
                b.store(C, (vi,), Select(vi < 4, A[safe], const(0.0)))
        func = b.finish()
        args = random_args(func)
        run(func, args)
        assert (args["C"][4:] == 0).all()
        np.testing.assert_allclose(args["C"][:4], args["A"])

    def test_cast_semantics(self):
        b = IRBuilder("casts")
        A = b.arg_buffer("A", (4,), "int8")
        C = b.arg_buffer("C", (4,), "int32")
        with b.grid(4) as i:
            with b.block("C") as blk:
                vi = blk.spatial(4, i)
                b.store(C, (vi,), Cast("int32", A[vi]) * 1000)
        func = b.finish()
        args = alloc_args(func)
        args["A"][:] = [-100, -1, 1, 100]
        run(func, args)
        np.testing.assert_array_equal(args["C"], [-100000, -1000, 1000, 100000])

    def test_intrinsic_calls(self):
        b = IRBuilder("calls")
        A = b.arg_buffer("A", (4,), "float32")
        C = b.arg_buffer("C", (4,), "float32")
        with b.grid(4) as i:
            with b.block("C") as blk:
                vi = blk.spatial(4, i)
                b.store(C, (vi,), call("sqrt", call("exp", A[vi])))
        func = b.finish()
        args = random_args(func)
        run(func, args)
        np.testing.assert_allclose(
            args["C"], np.sqrt(np.exp(args["A"].astype(np.float64))), rtol=1e-5
        )

    def test_init_runs_on_first_reduce_iteration_only(self):
        # Execute the same function twice in place: with correct init
        # handling results are identical (no accumulation across runs).
        func = build_matmul(8, 8, 8)
        args = random_args(func)
        run(func, args)
        first = args["C"].copy()
        run(func, args)
        np.testing.assert_array_equal(args["C"], first)

    def test_tensorized_fast_path_matches_scalar(self):
        base = build_matmul(64, 64, 64, dtype="float16")
        args = random_args(base)
        scalar_args = {k: v.copy() for k, v in args.items()}
        run(base, scalar_args)

        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "wmma_16x16x16_f16")
        compiled = compile_func(sch.func)
        assert "__intrin_wmma_16x16x16_f16" in compiled.source
        run(sch.func, args)
        np.testing.assert_allclose(
            args["C"].astype(np.float32),
            scalar_args["C"].astype(np.float32),
            atol=0.05,
        )

    def test_thread_bindings_execute_sequentially(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.bind(i, "blockIdx.x")
        sch.bind(j, "threadIdx.x")
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-5)
