"""Property test: the compiled executor agrees with the reference
interpreter on randomly scheduled programs.

Two independent executions of the same IR (tree-walking interpretation
vs generated Python) must agree to within last-ulp float32 rounding
(the interpreter evaluates intermediates in Python float64, the
compiled path in NumPy float32) — anything larger is a codegen or
interpreter bug.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import random_args, run
from repro.runtime.interp import interpret
from repro.schedule import Schedule

from ..common import build_matmul, build_matmul_relu
from ..schedule.test_property_semantics import _OPS, _apply_random_primitives


@settings(max_examples=25, deadline=None)
@given(ops=_OPS)
def test_codegen_matches_interpreter_on_matmul(ops):
    sch = Schedule(build_matmul(8, 8, 8), seed=0)
    _apply_random_primitives(sch, ops)
    args_compiled = random_args(sch.func, seed=3)
    args_interp = {k: v.copy() for k, v in args_compiled.items()}
    run(sch.func, args_compiled)
    interpret(sch.func, args_interp)
    np.testing.assert_allclose(args_compiled["C"], args_interp["C"], rtol=1e-5, atol=1e-6)


@settings(max_examples=15, deadline=None)
@given(ops=_OPS)
def test_codegen_matches_interpreter_on_matmul_relu(ops):
    sch = Schedule(build_matmul_relu(8), seed=1)
    _apply_random_primitives(sch, ops)
    args_compiled = random_args(sch.func, seed=5)
    args_interp = {k: v.copy() for k, v in args_compiled.items()}
    run(sch.func, args_compiled)
    interpret(sch.func, args_interp)
    np.testing.assert_allclose(args_compiled["D"], args_interp["D"], rtol=1e-5, atol=1e-6)


def test_interpreter_runs_tensorized_blocks_scalar():
    # The interpreter ignores the tensorize fast path and still gets the
    # same numbers (the annotation-only design keeps bodies executable).
    sch = Schedule(build_matmul(32, 32, 32, dtype="float16"))
    c = sch.get_block("C")
    i, j, k = sch.get_loops(c)
    io, ii = sch.split(i, [None, 16])
    jo, ji = sch.split(j, [None, 16])
    ko, ki = sch.split(k, [None, 16])
    sch.reorder(io, jo, ko, ii, ji, ki)
    sch.decompose_reduction(c, ko)
    sch.tensorize(ii, "wmma_16x16x16_f16")
    args = random_args(sch.func, seed=7)
    interp_args = {k: v.copy() for k, v in args.items()}
    run(sch.func, args)
    interpret(sch.func, interp_args)
    np.testing.assert_allclose(
        args["C"].astype(np.float32), interp_args["C"].astype(np.float32), atol=0.05
    )
