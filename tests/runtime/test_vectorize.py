"""Tests for the vectorized NumPy lowering fast path in codegen.

The contract (see ``_Codegen._try_vectorize``): vectorization is a
speed-only transform — for every function it must either produce the
same results as the scalar loop nest (within float tolerance for
re-associated reductions) or decline and fall back.  These tests pin
both sides: qualifying shapes emit an ``__vec`` arange statement and
match the scalar interpreter; disqualifying shapes fall back silently.
"""

import numpy as np

from repro.frontend.ops import bias_add_relu, layer_norm, matmul, softmax
from repro.runtime import compile_func
from repro.schedule import Schedule


def _run_both(func, shapes, dtypes, fill=None):
    vec = compile_func(func, vectorize=True)
    scalar = compile_func(func, vectorize=False)
    rng = np.random.default_rng(0)
    first = [rng.standard_normal(s).astype(d) for s, d in zip(shapes, dtypes)]
    if fill is not None:
        first[-1][:] = fill  # init must overwrite stale output contents
    second = [b.copy() for b in first]
    vec(*first)
    scalar(*second)
    match = all(
        np.allclose(a, b, rtol=1e-3, atol=1e-3) for a, b in zip(first, second)
    )
    return vec, match


class TestVectorizedMatchesScalar:
    def test_matmul_reduction_with_init(self):
        vec, match = _run_both(
            matmul(32, 24, 16, dtype="float32"),
            [(32, 16), (16, 24), (32, 24)],
            ["float32"] * 3,
            fill=7.5,
        )
        assert "__vec" in vec.source
        assert "__np.sum" in vec.source
        assert match

    def test_elementwise_epilogue(self):
        vec, match = _run_both(
            bias_add_relu(32, 64),
            [(32, 64), (64,), (32, 64)],
            ["float16"] * 3,
        )
        assert "__vec" in vec.source
        assert match

    def test_layer_norm(self):
        vec, match = _run_both(
            layer_norm(8, 32),
            [(8, 32), (32,), (32,), (8, 32)],
            ["float32"] * 4,
        )
        assert "__vec" in vec.source
        assert match

    def test_tiled_matmul_after_scheduling(self):
        func = matmul(64, 64, 64, dtype="float32")
        sch = Schedule(func)
        i, j, k = sch.get_loops(sch.get_block("C"))
        _, ii = sch.split(i, factors=[None, 8])
        jo, _ = sch.split(j, factors=[None, 8])
        vec, match = _run_both(
            sch.func, [(64, 64)] * 3, ["float32"] * 3, fill=-3.0
        )
        assert "__vec" in vec.source
        assert match

    def test_decomposed_reduction(self):
        func = matmul(32, 32, 32, dtype="float32")
        sch = Schedule(func)
        block = sch.get_block("C")
        sch.decompose_reduction(block, sch.get_loops(block)[2])
        vec, match = _run_both(
            sch.func, [(32, 32)] * 3, ["float32"] * 3, fill=2.0
        )
        assert "__vec" in vec.source
        assert match


class TestFallbacks:
    def test_float16_reduction_declines(self):
        # float16 accumulation order changes results beyond tolerance —
        # the reduction path must not fire (elementwise float16 is fine).
        vec, match = _run_both(
            matmul(16, 16, 16, dtype="float16"),
            [(16, 16)] * 3,
            ["float16"] * 3,
        )
        assert "__np.sum" not in vec.source
        assert match

    def test_softmax_inner_dependencies_decline(self):
        vec, match = _run_both(
            softmax(8, 32), [(8, 32), (8, 32)], ["float32"] * 2
        )
        assert match

    def test_vectorize_off_is_pure_scalar(self):
        compiled = compile_func(matmul(8, 8, 8, dtype="float32"), vectorize=False)
        assert "__vec" not in compiled.source

    def test_guarded_loop_declines(self):
        # A non-dividing split leaves a predicate on the block; guarded
        # stores must stay scalar (the guard is per-iteration).
        func = bias_add_relu(10, 30)
        sch = Schedule(func)
        block = sch.get_blocks()[0]
        loops = sch.get_loops(block)
        sch.split(loops[-1], factors=[None, 7])
        vec, match = _run_both(
            sch.func, [(10, 30), (30,), (10, 30)], ["float16"] * 3
        )
        assert "__vec" not in vec.source
        assert match
