"""Tests for blockize and tensorize (paper Figure 7, §4.1)."""

import numpy as np
import pytest

from repro.intrin import get_intrin
from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify
from repro.tir import IterVar

from ..common import build_matmul


def _wmma_schedule(n=64, with_scopes=True):
    sch = Schedule(build_matmul(n, n, n, dtype="float16"))
    c = sch.get_block("C")
    if with_scopes:
        sch.cache_read(c, 0, "wmma.matrix_a")
        sch.cache_read(c, 1, "wmma.matrix_b")
        sch.cache_write(c, 0, "wmma.accumulator")
    i, j, k = sch.get_loops(c)
    io, ii = sch.split(i, [None, 16])
    jo, ji = sch.split(j, [None, 16])
    ko, ki = sch.split(k, [None, 16])
    sch.reorder(io, jo, ko, ii, ji, ki)
    init = sch.decompose_reduction(c, ko)
    return sch, c, init, (io, jo, ko, ii, ji, ki)


class TestBlockize:
    def test_figure7_structure(self):
        sch, c, init, loops = _wmma_schedule(64, with_scopes=False)
        outer = sch.blockize(loops[3])  # at ii
        outer_block = sch.block_of(outer)
        kinds = [iv.kind for iv in outer_block.iter_vars]
        assert kinds == [IterVar.SPATIAL, IterVar.SPATIAL, IterVar.REDUCE]
        extents = [iv.dom.extent.value for iv in outer_block.iter_vars]
        assert extents == [4, 4, 4]
        # Outer block regions are 16x16 tiles.
        (write,) = outer_block.writes
        assert [r.extent.value for r in write.region] == [16, 16]
        # Inner block survives with rewritten bindings.
        inner = sch.get_child_blocks(outer)
        assert [b.name for b in inner] == ["C"]

    def test_blockize_semantics_preserved(self):
        sch, c, init, loops = _wmma_schedule(32, with_scopes=False)
        sch.blockize(loops[3])
        assert verify(sch.func) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
        np.testing.assert_allclose(args["C"].astype(np.float32), ref, atol=0.1)

    def test_blockize_requires_single_leaf(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        init = sch.decompose_reduction(c, i)
        # The root now has two nests; blockizing a loop with one leaf is
        # fine, but a made-up multi-leaf target must be rejected.  Fuse
        # both nests under one loop is not expressible here, so instead
        # check the single-leaf path still works:
        outer = sch.blockize(sch.get_loops(c)[0])
        assert sch.block_of(outer).name_hint == "C_o"

    def test_blockize_reduction_with_init_rejected(self):
        sch = Schedule(build_matmul(64, 64, 64))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        with pytest.raises(ScheduleError):
            sch.blockize(ii)  # init present, reduce crosses the boundary

    def test_blockize_fully_inner_reduction_with_init_ok(self):
        sch = Schedule(build_matmul(64, 64, 64))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        sch.reorder(io, jo, ii, ji, k)
        outer = sch.blockize(ii)  # k fully inside: safe with init
        outer_block = sch.block_of(outer)
        assert all(iv.is_spatial for iv in outer_block.iter_vars)
        assert verify(sch.func) == []

    def test_blockize_misaligned_rejected(self):
        sch = Schedule(build_matmul(64, 64, 64))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 12])  # 12 does not divide 64 evenly
        with pytest.raises(ScheduleError):
            sch.blockize(ii)


class TestTensorize:
    def test_full_wmma_flow(self):
        sch, c, init, loops = _wmma_schedule(64)
        blockized = sch.blockize(loops[3])
        sch.tensorize(blockized, "wmma_16x16x16_f16")
        ii0, jj0 = sch.get_loops(init)[-2:]
        _, i0i = sch.split(ii0, [None, 16])
        j0o, j0i = sch.split(jj0, [None, 16])
        sch.reorder(i0i, j0o)
        sch.tensorize(i0i, "wmma_fill_16x16_f16")
        assert verify(sch.func) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
        np.testing.assert_allclose(args["C"].astype(np.float32), ref, atol=0.1)

    def test_tensorize_annotations(self):
        sch, c, init, loops = _wmma_schedule(64)
        blockized = sch.blockize(loops[3])
        sch.tensorize(blockized, "wmma_16x16x16_f16")
        block = sch.block_of(blockized)
        assert block.annotations["tensorize"] == "wmma_16x16x16_f16"
        roles = block.annotations["tensorize_operands"]
        assert roles["A"].startswith("A_")
        assert roles["C"].startswith("C_")

    def test_tensorize_from_loop_blockizes(self):
        sch, c, init, loops = _wmma_schedule(64)
        sch.tensorize(loops[3], "wmma_16x16x16_f16")  # loop → auto-blockize
        blocks = [b.name for b in sch.get_blocks()]
        assert any(b.endswith("_o") for b in blocks)

    def test_tensorize_wrong_tile_rejected(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 8])
        jo, ji = sch.split(j, [None, 8])
        ko, ki = sch.split(k, [None, 8])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        with pytest.raises(ScheduleError):
            sch.tensorize(ii, "wmma_16x16x16_f16")  # 8x8x8 tile != 16x16x16

    def test_tensorize_wrong_dtype_rejected(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float32"))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        with pytest.raises(ScheduleError):
            sch.tensorize(ii, "wmma_16x16x16_f16")

    def test_scope_validation_catches_missing_fragments(self):
        # Tensorize without routing operands through wmma scopes: the
        # structural match succeeds but validation must flag the scopes.
        sch, c, init, loops = _wmma_schedule(64, with_scopes=False)
        blockized = sch.blockize(loops[3])
        sch.tensorize(blockized, "wmma_16x16x16_f16")
        problems = verify(sch.func)
        assert any("wmma.matrix_a" in p for p in problems)

    def test_sdot_tensorize(self):
        from repro.tir import Cast, IRBuilder

        b = IRBuilder("qgemm")
        A = b.arg_buffer("A", (16, 16), "int8")
        B = b.arg_buffer("B", (16, 16), "int8")
        C = b.arg_buffer("C", (16, 16), "int32")
        with b.grid(16, 16, 16) as (i, j, k):
            with b.block("C") as blk:
                vi = blk.spatial(16, i)
                vj = blk.spatial(16, j)
                vk = blk.reduce(16, k)
                with blk.init():
                    b.store(C, (vi, vj), 0)
                b.store(
                    C,
                    (vi, vj),
                    C[vi, vj] + Cast("int32", A[vi, vk]) * Cast("int32", B[vk, vj]),
                )
        sch = Schedule(b.finish())
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 4])
        jo, ji = sch.split(j, [None, 4])
        ko, ki = sch.split(k, [None, 4])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "sdot_4x4x4_i8")
        assert verify(sch.func) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.int32) @ args["B"].astype(np.int32)
        np.testing.assert_array_equal(args["C"], ref)

    def test_intrin_registry(self):
        intrin = get_intrin("wmma_16x16x16_f16")
        assert intrin.tile_shape() == (16, 16, 16)
        with pytest.raises(KeyError):
            get_intrin("made_up_intrin")
