"""Tests for compute-location and caching primitives."""

import numpy as np
import pytest

from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify
from repro.tir import max_expr

from ..common import build_elementwise_chain, build_matmul, build_matmul_relu


def _run_and_check(sch, ref_fn, out_name, rtol=1e-3):
    assert verify(sch.func) == []
    args = random_args(sch.func)
    run(sch.func, args)
    np.testing.assert_allclose(args[out_name], ref_fn(args), rtol=rtol, atol=1e-4)
    return args


def _chain_ref(args):
    return np.exp(args["A"].astype(np.float64) + 1.0)


def _matmul_relu_ref(args):
    c = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
    return np.maximum(c, 0)


class TestComputeAt:
    def test_paper_figure6_compute_at(self):
        # Figure 6: tile the consumer, then move the producer to the tile.
        sch = Schedule(build_elementwise_chain(64))
        c_block = sch.get_block("C")
        i, j = sch.get_loops(c_block)
        io, ii = sch.split(i, [8, None])
        jo, ji = sch.split(j, [8, None])
        sch.reorder(io, jo, ii, ji)
        sch.compute_at(sch.get_block("B"), jo)
        # The producer loops now live under jo with 8x8 extents.
        b_loops = sch.get_loops(sch.get_block("B"))
        extents = [sch.loop_of(l).extent.value for l in b_loops[-2:]]
        assert extents == [8, 8]
        _run_and_check(sch, _chain_ref, "C")

    def test_compute_at_shrinks_cache_region(self):
        sch = Schedule(build_matmul(64, 64, 64))
        c = sch.get_block("C")
        a_sh = sch.cache_read(c, 0, "shared")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [4, None])
        sch.compute_at(a_sh, io)
        copy_loops = sch.get_loops(a_sh)
        extents = [sch.loop_of(l).extent.value for l in copy_loops[-2:]]
        assert extents == [16, 64]  # 16 rows of A, all of K
        _run_and_check(
            sch, lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64), "C"
        )

    def test_compute_at_consumer_outside_rejected(self):
        sch = Schedule(build_elementwise_chain(16))
        b = sch.get_block("B")
        # Loop of the *producer* itself: consumers are not under it.
        own_loop = sch.get_loops(b)[0]
        with pytest.raises(ScheduleError):
            sch.compute_at(b, own_loop)

    def test_reverse_compute_at(self):
        sch = Schedule(build_matmul_relu(32))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [4, None])
        sch.reverse_compute_at(sch.get_block("D"), io)
        d_loops = sch.get_loops(sch.get_block("D"))
        assert sch.loop_of(d_loops[0]).loop_var.name == io.name
        extents = [sch.loop_of(l).extent.value for l in d_loops[-2:]]
        assert extents == [8, 32]
        _run_and_check(sch, _matmul_relu_ref, "D")


class TestInline:
    def test_compute_inline(self):
        sch = Schedule(build_elementwise_chain(16))
        sch.compute_inline(sch.get_block("B"))
        # Producer gone; C reads A directly.
        names = [rv.name for rv in sch.get_blocks()]
        assert names == ["C"]
        c_block = sch.block_of(sch.get_block("C"))
        assert [r.buffer.name for r in c_block.reads] == ["A"]
        # Intermediate allocation removed.
        assert sch.func.body.block.alloc_buffers == ()
        _run_and_check(sch, _chain_ref, "C")

    def test_inline_output_rejected(self):
        sch = Schedule(build_elementwise_chain(16))
        with pytest.raises(ScheduleError):
            sch.compute_inline(sch.get_block("C"))  # writes a function output

    def test_inline_reduction_rejected(self):
        sch = Schedule(build_matmul_relu(16))
        with pytest.raises(ScheduleError):
            sch.compute_inline(sch.get_block("C"))

    def test_reverse_compute_inline_elementwise(self):
        # exp(B) folded back into B = A + 1.
        sch = Schedule(build_elementwise_chain(16))
        sch.reverse_compute_inline(sch.get_block("C"))
        names = [rv.name for rv in sch.get_blocks()]
        assert names == ["B"]
        _run_and_check(sch, _chain_ref, "C")

    def test_reverse_compute_inline_identity_into_reduction(self):
        # A pure copy out of a reduction (cache_write pattern) may fold
        # back even though the producer is a reduction.
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        copy = sch.cache_write(c, 0, "local")
        sch.reverse_compute_inline(copy)
        names = [rv.name for rv in sch.get_blocks()]
        assert names == ["C"]
        _run_and_check(
            sch, lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64), "C"
        )

    def test_reverse_compute_inline_nonidentity_into_reduction_rejected(self):
        sch = Schedule(build_matmul_relu(16))
        with pytest.raises(ScheduleError):
            sch.reverse_compute_inline(sch.get_block("D"))  # relu over reduction

    def test_reverse_compute_inline_with_side_operand(self):
        # D = C + bias reads a *second* buffer alongside the produced
        # one; folding into the cache-write copy must remap both.
        from repro.tir import IRBuilder

        def build():
            b = IRBuilder("mm_bias")
            A = b.arg_buffer("A", (16, 16), "float32")
            B = b.arg_buffer("B", (16, 16), "float32")
            bias = b.arg_buffer("bias", (16,), "float32")
            D = b.arg_buffer("D", (16, 16), "float32")
            C = b.alloc_buffer("C", (16, 16), "float32")
            with b.grid(16, 16, 16) as (i, j, k):
                with b.block("C") as blk:
                    vi = blk.spatial(16, i)
                    vj = blk.spatial(16, j)
                    vk = blk.reduce(16, k)
                    with blk.init():
                        b.store(C, (vi, vj), 0.0)
                    b.store(C, (vi, vj), C[vi, vj] + A[vi, vk] * B[vk, vj])
            with b.grid(16, 16) as (i, j):
                with b.block("D") as blk:
                    vi = blk.spatial(16, i)
                    vj = blk.spatial(16, j)
                    b.store(D, (vi, vj), C[vi, vj] + bias[vj])
            return b.finish()

        sch = Schedule(build())
        writeback = sch.cache_write(sch.get_block("C"), 0, "local")
        sch.reverse_compute_inline(sch.get_block("D"))
        names = [rv.name for rv in sch.get_blocks()]
        assert names == ["C", "C_local"]
        _run_and_check(
            sch,
            lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64)
            + a["bias"],
            "D",
        )

    def test_reverse_compute_inline_two_produced_buffers_rejected(self):
        # A consumer summing two *produced* tensors has no single
        # producer to fold into.
        from repro.tir import IRBuilder

        def build():
            b = IRBuilder("two_producers")
            A = b.arg_buffer("A", (8,), "float32")
            D = b.arg_buffer("D", (8,), "float32")
            P = b.alloc_buffer("P", (8,), "float32")
            Q = b.alloc_buffer("Q", (8,), "float32")
            with b.grid(8) as i:
                with b.block("P") as blk:
                    vi = blk.spatial(8, i)
                    b.store(P, (vi,), A[vi] + 1.0)
            with b.grid(8) as i:
                with b.block("Q") as blk:
                    vi = blk.spatial(8, i)
                    b.store(Q, (vi,), A[vi] * 2.0)
            with b.grid(8) as i:
                with b.block("D") as blk:
                    vi = blk.spatial(8, i)
                    b.store(D, (vi,), P[vi] + Q[vi])
            return b.finish()

        sch = Schedule(build())
        with pytest.raises(ScheduleError, match="exactly one produced buffer"):
            sch.reverse_compute_inline(sch.get_block("D"))


class TestCache:
    def test_cache_read_structure(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        copy = sch.cache_read(c, 0, "shared")
        copy_block = sch.block_of(copy)
        assert copy_block.annotations["data_movement"] == "read"
        assert copy_block.writes[0].buffer.scope == "shared"
        c_block = sch.block_of(c)
        assert c_block.reads[0].buffer.scope == "shared"
        _run_and_check(
            sch, lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64), "C"
        )

    def test_cache_write_structure(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        copy = sch.cache_write(c, 0, "local")
        c_block = sch.block_of(c)
        assert c_block.writes[0].buffer.scope == "local"
        copy_block = sch.block_of(copy)
        assert copy_block.annotations["data_movement"] == "write"
        _run_and_check(
            sch, lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64), "C"
        )

    def test_cache_read_bad_index(self):
        sch = Schedule(build_matmul(16, 16, 16))
        with pytest.raises(ScheduleError):
            sch.cache_read(sch.get_block("C"), 5, "shared")

    def test_set_scope(self):
        sch = Schedule(build_elementwise_chain(16))
        sch.set_scope(sch.get_block("B"), 0, "shared")
        b_block = sch.block_of(sch.get_block("B"))
        assert b_block.writes[0].buffer.scope == "shared"
        allocs = sch.func.body.block.alloc_buffers
        assert [b.scope for b in allocs] == ["shared"]
        _run_and_check(sch, _chain_ref, "C")

    def test_set_scope_output_rejected(self):
        sch = Schedule(build_elementwise_chain(16))
        with pytest.raises(ScheduleError):
            sch.set_scope(sch.get_block("C"), 0, "shared")


class TestDecomposeReduction:
    def test_basic(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        init = sch.decompose_reduction(c, k)
        init_block = sch.block_of(init)
        assert init_block.name_hint == "C_init"
        assert not init_block.is_reduction
        assert sch.block_of(c).init is None
        _run_and_check(
            sch, lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64), "C"
        )

    def test_decompose_at_outer_loop(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        init = sch.decompose_reduction(c, j)
        # The init block replicates the j loop (spatial) only.
        init_loops = sch.get_loops(init)
        assert len(init_loops) == 2  # i (shared) + cloned j
        _run_and_check(
            sch, lambda a: a["A"].astype(np.float64) @ a["B"].astype(np.float64), "C"
        )

    def test_no_init_rejected(self):
        sch = Schedule(build_elementwise_chain(16))
        b = sch.get_block("B")
        with pytest.raises(ScheduleError):
            sch.decompose_reduction(b, sch.get_loops(b)[0])

    def test_reduce_outside_target_rejected(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        sch.reorder(k, i, j)
        with pytest.raises(ScheduleError):
            sch.decompose_reduction(c, sch.get_loops(c)[1])  # k now outside
