"""Executable reproductions of the paper's explanatory figures (2, 6, 7).

These are correctness tests shaped exactly like the paper's running
examples: the divide-and-conquer matmul of Figure 2, the loop
transformations of Figure 6, and the blockization of Figure 7.
"""

import numpy as np

from repro.runtime import random_args, run
from repro.schedule import Schedule, verify
from repro.tir import IRBuilder, IterVar

from ..common import build_matmul, build_matmul_relu


def test_figure2_divide_and_conquer_4x4():
    """Figure 2: divide a matmul into 4x4 sub-matmuls and the loops that
    use them, then optimize the two levels separately."""
    sch = Schedule(build_matmul(64, 64, 64))
    c = sch.get_block("C")
    i, j, k = sch.get_loops(c)
    io, ii = sch.split(i, [None, 4])
    jo, ji = sch.split(j, [None, 4])
    ko, ki = sch.split(k, [None, 4])
    sch.reorder(io, jo, ko, ii, ji, ki)
    init = sch.decompose_reduction(c, ko)
    outer = sch.blockize(ii)  # the inner problem: a 4x4x4 matmul
    # Outer problem: transform the loop nest around the isolated block
    # (swap the spatial tile loops; the reduction loop cannot cross the
    # init statement's position).
    oi, oj = sch.get_loops(outer)[:2]
    sch.reorder(oj, oi)
    assert verify(sch.func) == []
    args = random_args(sch.func)
    run(sch.func, args)
    ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
    np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-4)


def test_figure6_reverse_compute_at():
    """Figure 6: tile block_C's loops 8x8 and move block_D under the
    tile — loops mutate outside the blocks, nothing changes inside."""
    sch = Schedule(build_matmul_relu(64))
    c = sch.get_block("C")
    body_before = sch.block_of(sch.get_block("D")).body
    i, j, k = sch.get_loops(c)
    io, ii = sch.split(i, [8, None])
    jo, ji = sch.split(j, [8, None])
    sch.reorder(io, jo, ii, ji, k)
    sch.reverse_compute_at(sch.get_block("D"), jo)
    # block_D's body is untouched (the defining property of the figure).
    from repro.tir import structural_equal

    assert structural_equal(sch.block_of(sch.get_block("D")).body, body_before)
    args = random_args(sch.func)
    run(sch.func, args)
    ref = np.maximum(args["A"].astype(np.float64) @ args["B"].astype(np.float64), 0)
    np.testing.assert_allclose(args["D"], ref, rtol=1e-3, atol=1e-4)


def test_figure7_blockization():
    """Figure 7: blockize the k1 loop of a matmul whose reduction was
    split — the new outer block isolates inside computation from
    outside loop nesting."""
    b = IRBuilder("fig7")
    A = b.arg_buffer("A", (64, 64), "float32")
    B = b.arg_buffer("B", (64, 64), "float32")
    C = b.arg_buffer("C", (64, 64), "float32")
    with b.grid(64, 64, 16, names=["i", "j", "k0"]) as (i, j, k0):
        with b.block("blk") as blk:
            vi = blk.spatial(64, i)
            vj = blk.spatial(64, j)
            with b.serial(4, "k1") as k1:
                with b.block("inner") as inner:
                    vii = inner.spatial(64, vi, name="vii")
                    vjj = inner.spatial(64, vj, name="vjj")
                    vk = inner.reduce(64, k0 * 4 + k1)
                    b.store(C, (vii, vjj), C[vii, vjj] + A[vii, vk] * B[vk, vjj])
    # Simpler route: build the plain form and blockize via the schedule.
    sch = Schedule(build_matmul(64, 64, 64))
    c = sch.get_block("C")
    i, j, k = sch.get_loops(c)
    k0, k1 = sch.split(k, [16, 4])
    init = sch.decompose_reduction(c, k0)
    outer = sch.blockize(k1)
    outer_block = sch.block_of(outer)
    # The blockized outer block carries (vi0, vj0, vk0 = i, j, k0).
    kinds = [iv.kind for iv in outer_block.iter_vars]
    assert kinds == [IterVar.SPATIAL, IterVar.SPATIAL, IterVar.REDUCE]
    assert [iv.dom.extent.value for iv in outer_block.iter_vars] == [64, 64, 16]
    assert verify(sch.func) == []
    args = random_args(sch.func)
    run(sch.func, args)
    ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
    np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-4)
