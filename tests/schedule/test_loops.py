"""Tests for loop transformation primitives."""

import numpy as np
import pytest

from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify

from ..common import build_elementwise_chain, build_matmul


def _matmul_ref(args):
    return args["A"].astype(np.float64) @ args["B"].astype(np.float64)


def _check_matmul(sch):
    assert verify(sch.func) == []
    args = random_args(sch.func)
    run(sch.func, args)
    np.testing.assert_allclose(args["C"], _matmul_ref(args), rtol=1e-3, atol=1e-4)


class TestSplit:
    def test_divisible(self):
        sch = Schedule(build_matmul(32, 32, 32))
        i, j, k = sch.get_loops(sch.get_block("C"))
        io, ii = sch.split(i, [None, 8])
        assert sch.loop_of(io).extent.value == 4
        assert sch.loop_of(ii).extent.value == 8
        _check_matmul(sch)

    def test_three_way(self):
        sch = Schedule(build_matmul(32, 32, 32))
        i, j, k = sch.get_loops(sch.get_block("C"))
        parts = sch.split(i, [2, None, 4])
        assert [sch.loop_of(p).extent.value for p in parts] == [2, 4, 4]
        _check_matmul(sch)

    def test_non_divisible_adds_predicate(self):
        sch = Schedule(build_matmul(30, 32, 32))
        i, j, k = sch.get_loops(sch.get_block("C"))
        io, ii = sch.split(i, [None, 8])
        assert sch.loop_of(io).extent.value == 4  # ceil(30/8)
        block = sch._block_realize("C")
        from repro.tir import IntImm

        assert not isinstance(block.predicate, IntImm)
        _check_matmul(sch)

    def test_factors_too_small_rejected(self):
        sch = Schedule(build_matmul(32, 32, 32))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.split(i, [2, 8])

    def test_two_nones_rejected(self):
        sch = Schedule(build_matmul(32, 32, 32))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.split(i, [None, None])

    def test_split_names_deterministic(self):
        sch = Schedule(build_matmul(32, 32, 32))
        i, j, k = sch.get_loops(sch.get_block("C"))
        io, ii = sch.split(i, [None, 8])
        assert io.name == "i_0"
        assert ii.name == "i_1"


class TestFuse:
    def test_fuse_two(self):
        sch = Schedule(build_matmul(16, 32, 8))
        i, j, k = sch.get_loops(sch.get_block("C"))
        fused = sch.fuse(i, j)
        assert sch.loop_of(fused).extent.value == 512
        _check_matmul(sch)

    def test_fuse_not_nested_rejected(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.fuse(i, k)  # j sits in between

    def test_fuse_then_split_roundtrip_semantics(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        fused = sch.fuse(i, j)
        sch.split(fused, [None, 16])
        _check_matmul(sch)


class TestReorder:
    def test_reorder_spatial_and_reduce(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.reorder(k, i, j)
        names = [rv.name for rv in sch.get_loops(sch.get_block("C"))]
        assert names == ["k", "i", "j"]
        _check_matmul(sch)

    def test_reorder_subset_keeps_others(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.reorder(k, i)  # j untouched in the middle
        names = [rv.name for rv in sch.get_loops(sch.get_block("C"))]
        assert names == ["k", "j", "i"]
        _check_matmul(sch)

    def test_reorder_across_blocks_rejected(self):
        sch = Schedule(build_elementwise_chain(8))
        lb = sch.get_loops(sch.get_block("B"))
        lc = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.reorder(lb[0], lc[0])

    def test_duplicate_rejected(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.reorder(i, i)


class TestKindsAndBind:
    def test_parallel_spatial_ok(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.parallel(i)
        assert sch.loop_of(i).kind == "parallel"
        _check_matmul(sch)

    def test_parallel_reduce_rejected(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.parallel(k)

    def test_vectorize_unroll(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.unroll(k)
        sch.vectorize(j)
        assert sch.loop_of(j).kind == "vectorized"
        assert sch.loop_of(k).kind == "unrolled"
        _check_matmul(sch)

    def test_bind_thread(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.bind(i, "blockIdx.x")
        sch.bind(j, "threadIdx.x")
        loop = sch.loop_of(i)
        assert loop.kind == "thread_binding" and loop.thread_tag == "blockIdx.x"
        _check_matmul(sch)

    def test_bind_reduce_rejected(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.bind(k, "threadIdx.x")

    def test_bind_unknown_tag_rejected(self):
        sch = Schedule(build_matmul(16, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.bind(i, "warpIdx.q")

    def test_annotate_loop_and_block(self):
        sch = Schedule(build_matmul(16, 16, 16))
        blk = sch.get_block("C")
        i, j, k = sch.get_loops(blk)
        sch.annotate(i, "pragma_unroll", 16)
        sch.annotate(blk, "hint", "x")
        assert sch.loop_of(i).annotations["pragma_unroll"] == 16
        assert sch.block_of(blk).annotations["hint"] == "x"
