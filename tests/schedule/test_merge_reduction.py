"""Tests for merge_reduction (the inverse of decompose_reduction)."""

import numpy as np
import pytest

from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify
from repro.tir import structural_equal

from ..common import build_matmul


class TestMergeReduction:
    def test_roundtrip_restores_program(self):
        sch = Schedule(build_matmul(16, 16, 16))
        before = sch.func
        c = sch.get_block("C")
        k = sch.get_loops(c)[2]
        init = sch.decompose_reduction(c, k)
        assert sch.block_of(c).init is None
        sch.merge_reduction(init, c)
        merged = sch.block_of(c)
        assert merged.init is not None
        assert structural_equal(sch.func, before)

    def test_merge_after_outer_decompose(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        j = sch.get_loops(c)[1]
        init = sch.decompose_reduction(c, j)
        sch.merge_reduction(init, c)
        assert verify(sch.func) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-4)

    def test_merge_into_block_with_init_rejected(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        k = sch.get_loops(c)[2]
        init = sch.decompose_reduction(c, k)
        sch.merge_reduction(init, c)
        # A second merge has no standalone init block left to use.
        with pytest.raises(ScheduleError):
            sch.merge_reduction(c, c)

    def test_merge_unrelated_blocks_rejected(self):
        from ..common import build_matmul_relu

        sch = Schedule(build_matmul_relu(16))
        with pytest.raises(ScheduleError):
            sch.merge_reduction(sch.get_block("D"), sch.get_block("C"))

    def test_trace_replays_merge(self):
        sch = Schedule(build_matmul(16, 16, 16))
        c = sch.get_block("C")
        k = sch.get_loops(c)[2]
        init = sch.decompose_reduction(c, k)
        sch.merge_reduction(init, c)
        fresh = Schedule(build_matmul(16, 16, 16))
        sch.trace.apply_to(fresh)
        assert structural_equal(sch.func, fresh.func)
