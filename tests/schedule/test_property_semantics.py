"""Property-based test: schedule primitives preserve program semantics.

Random sequences of legally-applied primitives on small workloads must
not change the computed result — the core soundness claim behind the
paper's search-space construction (§3.2/§3.3: every transformation is
semantics-preserving; validation rejects the rest).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify

from ..common import build_matmul, build_matmul_relu


def _apply_random_primitives(sch: Schedule, ops, block_name="C"):
    """Apply a list of (op_kind, params) decisions; illegal ones skip."""
    applied = []
    for kind, a, b in ops:
        try:
            block = sch.get_block(block_name)
            loops = sch.get_loops(block)
            if not loops:
                continue
            if kind == "split":
                loop = loops[a % len(loops)]
                extent = sch.loop_of(loop).extent.value
                divisors = [d for d in range(2, min(extent, 9)) if extent % d == 0]
                if not divisors:
                    continue
                sch.split(loop, [None, divisors[b % len(divisors)]])
            elif kind == "fuse":
                if len(loops) < 2:
                    continue
                idx = a % (len(loops) - 1)
                sch.fuse(loops[idx], loops[idx + 1])
            elif kind == "reorder":
                if len(loops) < 2:
                    continue
                i1 = a % len(loops)
                i2 = b % len(loops)
                if i1 == i2:
                    continue
                sch.reorder(loops[min(i1, i2)], loops[max(i1, i2)])
            elif kind == "unroll":
                sch.unroll(loops[a % len(loops)])
            elif kind == "vectorize":
                sch.vectorize(loops[-1])
            elif kind == "parallel":
                sch.parallel(loops[0])
            elif kind == "cache_read":
                n_reads = len(sch.block_of(block).reads)
                if n_reads:
                    sch.cache_read(block, a % n_reads, "shared")
            elif kind == "cache_write":
                sch.cache_write(block, 0, "local")
            elif kind == "decompose":
                sch.decompose_reduction(block, loops[a % len(loops)])
            elif kind == "compute_at_cache":
                n_reads = len(sch.block_of(block).reads)
                if not n_reads:
                    continue
                copy = sch.cache_read(block, a % n_reads, "shared")
                loops = sch.get_loops(block)
                sch.compute_at(copy, loops[0])
            applied.append(kind)
        except ScheduleError:
            continue
    return applied


_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "split",
                "fuse",
                "reorder",
                "unroll",
                "vectorize",
                "parallel",
                "cache_read",
                "cache_write",
                "decompose",
                "compute_at_cache",
            ]
        ),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_random_schedules_preserve_matmul(ops):
    sch = Schedule(build_matmul(16, 16, 16), seed=0)
    _apply_random_primitives(sch, ops)
    assert verify(sch.func) == [], sch.show()
    args = random_args(sch.func, seed=1)
    run(sch.func, args)
    ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
    np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(ops=_OPS)
def test_random_schedules_preserve_matmul_relu(ops):
    sch = Schedule(build_matmul_relu(16), seed=0)
    _apply_random_primitives(sch, ops)
    assert verify(sch.func) == [], sch.show()
    args = random_args(sch.func, seed=2)
    run(sch.func, args)
    ref = np.maximum(args["A"].astype(np.float64) @ args["B"].astype(np.float64), 0)
    np.testing.assert_allclose(args["D"], ref, rtol=1e-3, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(ops=_OPS, data=st.data())
def test_trace_replay_matches_original(ops, data):
    sch = Schedule(build_matmul(16, 16, 16), seed=0)
    _apply_random_primitives(sch, ops)
    from repro.tir import structural_equal

    fresh = Schedule(build_matmul(16, 16, 16), seed=0)
    sch.trace.apply_to(fresh)
    assert structural_equal(sch.func, fresh.func)
