"""Tests for the ReIndex and pad_einsum primitives (§4.2)."""

import numpy as np
import pytest

from repro.runtime import random_args, run
from repro.schedule import Schedule, ScheduleError, verify
from repro.tir import IRBuilder

from ..common import build_matmul


def _conv1d_func(n=18, k=3, c=4, f=8):
    """A stride-1 1D convolution with the paper's Conv2D index shape:
    C[x, co] += A[x + r, ci] * W[r, ci, co]."""
    b = IRBuilder("conv1d")
    A = b.arg_buffer("A", (n + k - 1, c), "float32")
    W = b.arg_buffer("W", (k, c, f), "float32")
    C = b.arg_buffer("C", (n, f), "float32")
    with b.grid(n, f, k, c, names=["x", "co", "r", "ci"]) as (x, co, r, ci):
        with b.block("C") as blk:
            vx = blk.spatial(n, x)
            vco = blk.spatial(f, co)
            vr = blk.reduce(k, r)
            vci = blk.reduce(c, ci)
            with blk.init():
                b.store(C, (vx, vco), 0.0)
            b.store(C, (vx, vco), C[vx, vco] + A[vx + vr, vci] * W[vr, vci, vco])
    return b.finish()


def _conv1d_ref(args, n, k):
    A, W = args["A"].astype(np.float64), args["W"].astype(np.float64)
    out = np.zeros((n, W.shape[2]))
    for r in range(k):
        out += np.einsum("xc,cf->xf", A[r : r + n], W[r])
    return out


class TestReindex:
    def test_reindex_read_rewrites_access(self):
        sch = Schedule(_conv1d_func())
        c = sch.get_block("C")
        rw = sch.reindex(c, "read", 0)  # the A operand
        rw_block = sch.block_of(rw)
        assert rw_block.annotations["reindex"] == "read"
        # New buffer indexed by (vx, vr, vci): 3 dims of extents 18,3,4.
        new_buf = rw_block.writes[0].buffer
        assert new_buf.shape_ints() == (18, 3, 4)
        # The compute block now reads the reindexed buffer point-wise.
        c_block = sch.block_of(c)
        a_reads = [r for r in c_block.reads if r.buffer is new_buf]
        assert len(a_reads) == 1
        assert all(r.extent.value == 1 for r in a_reads[0].region)
        assert verify(sch.func) == []

    def test_reindex_preserves_semantics(self):
        n, k = 18, 3
        sch = Schedule(_conv1d_func(n, k))
        c = sch.get_block("C")
        sch.reindex(c, "read", 0)
        sch.reindex(c, "read", 1)
        sch.reindex(c, "write", 0)
        assert verify(sch.func) == []
        args = random_args(sch.func)
        run(sch.func, args)
        np.testing.assert_allclose(args["C"], _conv1d_ref(args, n, k), rtol=1e-3, atol=1e-5)

    def test_reindex_write_excludes_reduce_iters(self):
        sch = Schedule(_conv1d_func())
        c = sch.get_block("C")
        rw = sch.reindex(c, "write", 0)
        new_buf = sch.block_of(rw).reads[0].buffer
        assert new_buf.shape_ints() == (18, 8)  # only spatial iters

    def test_reindex_bad_role(self):
        sch = Schedule(_conv1d_func())
        with pytest.raises(ScheduleError):
            sch.reindex(sch.get_block("C"), "sideways", 0)

    def test_reindex_matmul_identity_layout(self):
        # On a plain matmul the reindexed buffer has the same shape.
        sch = Schedule(build_matmul(8, 8, 8))
        c = sch.get_block("C")
        rw = sch.reindex(c, "read", 0)
        assert sch.block_of(rw).writes[0].buffer.shape_ints() == (8, 8)


class TestPadEinsum:
    def test_pad_matmul_to_tile_multiple(self):
        sch = Schedule(build_matmul(30, 30, 30))
        c = sch.get_block("C")
        # Canonical einsum form first (reindex every operand).
        sch.reindex(c, "read", 0)
        sch.reindex(c, "read", 1)
        sch.reindex(c, "write", 0)
        sch.pad_einsum(c, [32, 32, 32])
        block = sch.block_of(c)
        assert [iv.dom.extent.value for iv in block.iter_vars] == [32, 32, 32]
        loops = sch.get_loops(c)
        assert [sch.loop_of(l).extent.value for l in loops] == [32, 32, 32]
        assert verify(sch.func) == []
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-5)

    def test_pad_noop(self):
        sch = Schedule(build_matmul(32, 32, 32))
        c = sch.get_block("C")
        before = sch.show()
        sch.pad_einsum(c, [32, 32, 32])
        assert sch.show() == before

    def test_pad_below_extent_rejected(self):
        sch = Schedule(build_matmul(32, 32, 32))
        with pytest.raises(ScheduleError):
            sch.pad_einsum(sch.get_block("C"), [16, 32, 32])

    def test_pad_requires_einsum_form(self):
        sch = Schedule(_conv1d_func())
        # A[vx + vr, vci] is not a direct iterator access.
        with pytest.raises(ScheduleError):
            sch.pad_einsum(sch.get_block("C"), [20, 8, 4, 4])

    def test_padded_then_tensorized(self):
        # The §4.2 flow end-to-end on a non-divisible GEMM: reindex →
        # pad to 16 multiples → tile → tensorize → correct result.
        sch = Schedule(build_matmul(24, 24, 24, dtype="float16"))
        c = sch.get_block("C")
        sch.reindex(c, "read", 0)
        # B is accessed B[vk, vj]; its iterators in block order are
        # (vj, vk) — permute so the reindexed layout matches the
        # intrinsic's B[k, j].
        sch.reindex(c, "read", 1, iter_order=[1, 0])
        sch.reindex(c, "write", 0)
        sch.pad_einsum(c, [32, 32, 32])
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "wmma_16x16x16_f16")
        args = random_args(sch.func)
        run(sch.func, args)
        ref = args["A"].astype(np.float32) @ args["B"].astype(np.float32)
        np.testing.assert_allclose(args["C"].astype(np.float32), ref, atol=0.1)
