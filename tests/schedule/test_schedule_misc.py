"""Miscellaneous Schedule API behaviours: resolution, atomicity, copies."""

import pytest

from repro.schedule import Schedule, ScheduleError

from ..common import build_matmul, build_matmul_relu


class TestResolution:
    def test_get_block_missing(self):
        sch = Schedule(build_matmul(8, 8, 8))
        with pytest.raises(ScheduleError):
            sch.get_block("nope")

    def test_get_blocks_order(self):
        sch = Schedule(build_matmul_relu(8))
        assert [rv.name for rv in sch.get_blocks()] == ["C", "D"]

    def test_duplicate_names_uniquified_on_entry(self):
        from repro.tir import IRBuilder

        b = IRBuilder("dups")
        A = b.arg_buffer("A", (4,), "float32")
        for _ in range(2):
            with b.grid(4) as i:
                with b.block("blk") as blk:
                    vi = blk.spatial(4, i)
                    b.store(A, (vi,), 1.0)
        sch = Schedule(b.finish())
        names = [rv.name for rv in sch.get_blocks()]
        assert len(names) == len(set(names)) == 2

    def test_get_child_blocks(self):
        sch = Schedule(build_matmul(64, 64, 64))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 8])
        outer = sch.blockize(ii)
        assert [b.name for b in sch.get_child_blocks(outer)] == ["C"]


class TestAtomicity:
    def test_failed_primitive_leaves_state_unchanged(self):
        sch = Schedule(build_matmul(8, 8, 8))
        before = sch.show()
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.split(i, [3, 2])  # 6 < 8: invalid coverage
        assert sch.show() == before

    def test_failed_compute_at_rolls_back(self):
        sch = Schedule(build_matmul_relu(8))
        before = sch.show()
        c = sch.get_block("C")
        with pytest.raises(ScheduleError):
            # A block cannot be computed at its own enclosing loop.
            sch.compute_at(c, sch.get_loops(c)[0])
        assert sch.show() == before

    def test_trace_not_polluted_by_failures(self):
        sch = Schedule(build_matmul(8, 8, 8))
        i, j, k = sch.get_loops(sch.get_block("C"))
        with pytest.raises(ScheduleError):
            sch.split(i, [None, None])
        assert len(sch.trace) == 0


class TestCopy:
    def test_copy_is_independent(self):
        sch = Schedule(build_matmul(16, 16, 16), seed=0)
        clone = sch.copy(seed=1)
        i = sch.get_loops(sch.get_block("C"))[0]
        sch.split(i, [None, 4])
        # The clone still sees the original three loops.
        assert len(clone.get_loops(clone.get_block("C"))) == 3
        assert len(sch.get_loops(sch.get_block("C"))) == 4
