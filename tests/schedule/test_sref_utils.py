"""Tests for the sref tree-navigation utilities underlying scheduling."""

import pytest

from repro.schedule.sref import (
    ScheduleError,
    children_of,
    find_blocks,
    find_loops,
    loops_above,
    path_to,
    replace_stmt,
    with_children,
)
from repro.tir import (
    Buffer,
    BufferStore,
    For,
    IfThenElse,
    SeqStmt,
    Var,
    seq,
)

from ..common import build_matmul, build_matmul_relu


def _simple_tree():
    buf = Buffer("A", (8,), "float32")
    i, j = Var("i"), Var("j")
    s1 = BufferStore(buf, 1.0, [i])
    s2 = BufferStore(buf, 2.0, [j])
    inner = For(j, 0, 8, "serial", s2)
    outer = For(i, 0, 8, "serial", seq([s1, inner]))
    return outer, s1, s2, inner, buf


class TestNavigation:
    def test_children_and_rebuild(self):
        outer, s1, s2, inner, buf = _simple_tree()
        kids = children_of(outer)
        assert len(kids) == 1 and isinstance(kids[0], SeqStmt)
        rebuilt = with_children(outer, kids)
        assert isinstance(rebuilt, For)
        assert rebuilt.loop_var is outer.loop_var

    def test_path_to(self):
        outer, s1, s2, inner, buf = _simple_tree()
        path = path_to(outer, s2)
        assert path[0] is outer and path[-1] is s2
        assert inner in path
        assert path_to(outer, BufferStore(buf, 0.0, [0])) is None

    def test_loops_above(self):
        f = build_matmul(8, 8, 8)
        realize = find_blocks(f.body, "C")[0]
        loops = loops_above(f.body, realize)
        assert [lp.loop_var.name for lp in loops] == ["i", "j", "k"]

    def test_find_blocks_and_loops_filters(self):
        f = build_matmul_relu(8)
        assert len(find_blocks(f.body)) == 3  # root + C + D
        assert [r.block.name_hint for r in find_blocks(f.body, "D")] == ["D"]
        assert len(find_loops(f.body)) == 5
        assert len(find_loops(f.body, "k")) == 1


class TestReplace:
    def test_replace_leaf(self):
        outer, s1, s2, inner, buf = _simple_tree()
        new = BufferStore(buf, 9.0, [Var("x")])
        # x is free but that's fine for a pure tree operation
        rebuilt = replace_stmt(outer, s2, new)
        assert path_to(rebuilt, new) is not None
        assert path_to(rebuilt, s2) is None

    def test_delete_from_sequence(self):
        outer, s1, s2, inner, buf = _simple_tree()
        rebuilt = replace_stmt(outer, s1, None)
        assert path_to(rebuilt, s1) is None
        assert path_to(rebuilt, inner) is not None

    def test_delete_only_child_rejected(self):
        outer, s1, s2, inner, buf = _simple_tree()
        with pytest.raises(ScheduleError):
            replace_stmt(outer, s2, None)  # inner loop's only statement

    def test_replace_missing_target_rejected(self):
        outer, s1, s2, inner, buf = _simple_tree()
        stray = BufferStore(buf, 0.0, [0])
        with pytest.raises(ScheduleError):
            replace_stmt(outer, stray, s1)

    def test_if_children_roundtrip(self):
        buf = Buffer("A", (8,), "float32")
        i = Var("i")
        node = IfThenElse(i < 4, BufferStore(buf, 1.0, [i]), BufferStore(buf, 2.0, [i]))
        kids = children_of(node)
        assert len(kids) == 2
        rebuilt = with_children(node, kids)
        assert rebuilt.else_case is node.else_case
