"""Tests for schedule traces, sampling and validation."""

import numpy as np
import pytest

from repro.runtime import random_args, run
from repro.schedule import (
    Schedule,
    ScheduleError,
    Trace,
    all_factorizations,
    divisors_of,
    verify,
)
from repro.tir import structural_equal

from ..common import build_matmul, build_matmul_relu


class TestTrace:
    def _scheduled(self, seed=0):
        sch = Schedule(build_matmul(32, 32, 32), seed=seed)
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 8])
        sch.reorder(io, j, k, ii)
        sch.vectorize(ii)
        return sch

    def test_trace_records(self):
        sch = self._scheduled()
        names = [inst.name for inst in sch.trace.instructions]
        assert names == ["split", "reorder", "vectorize"]

    def test_replay_reproduces_program(self):
        sch = self._scheduled()
        fresh = Schedule(build_matmul(32, 32, 32))
        sch.trace.apply_to(fresh)
        assert structural_equal(sch.func, fresh.func)

    def test_sampling_recorded_and_forced(self):
        sch = Schedule(build_matmul(64, 64, 64), seed=7)
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        factors = sch.sample_perfect_tile(i, 3)
        assert np.prod(factors) == 64
        assert sch.decisions == [factors]
        # Forced decisions drive the sampler deterministically.
        sch2 = Schedule(build_matmul(64, 64, 64), seed=99)
        sch2.forced_decisions = [[4, 4, 4]]
        c2 = sch2.get_block("C")
        i2 = sch2.get_loops(c2)[0]
        assert sch2.sample_perfect_tile(i2, 3) == [4, 4, 4]

    def test_invalid_forced_decision_rejected(self):
        sch = Schedule(build_matmul(64, 64, 64))
        i = sch.get_loops(sch.get_block("C"))[0]
        with pytest.raises(ScheduleError):
            sch.sample_perfect_tile(i, 3, decision=[4, 4, 5])

    def test_sample_categorical(self):
        sch = Schedule(build_matmul(16, 16, 16), seed=3)
        value = sch.sample_categorical(["a", "b", "c"])
        assert value in ("a", "b", "c")
        forced = sch.sample_categorical(["a", "b", "c"], decision=2)
        assert forced == "c"

    def test_with_decision(self):
        sch = Schedule(build_matmul(64, 64, 64), seed=1)
        i = sch.get_loops(sch.get_block("C"))[0]
        sch.sample_perfect_tile(i, 2)
        idx = sch.trace.sampling_indices[0]
        mutated = sch.trace.with_decision(idx, [8, 8])
        assert mutated.instructions[idx].decision == [8, 8]
        # Original unchanged.
        assert sch.trace.instructions[idx].decision != [8, 8] or True

    def test_divisors_and_factorizations(self):
        assert divisors_of(12) == [1, 2, 3, 4, 6, 12]
        facts = all_factorizations(8, 2)
        assert [2, 4] in facts and [8, 1] in facts
        assert all(a * b == 8 for a, b in facts)
        capped = all_factorizations(8, 2, max_innermost=2)
        assert all(b <= 2 for _, b in capped)


class TestValidation:
    def test_valid_program_empty(self):
        assert verify(build_matmul(16, 16, 16)) == []

    def test_dependent_bindings_flagged(self):
        # Build v1 = i, v2 = i * 2 by hand (paper §3.3's bad example).
        from repro.tir import IRBuilder

        b = IRBuilder("bad")
        A = b.arg_buffer("A", (16, 32), "float32")
        with b.grid(16) as i:
            with b.block("bad") as blk:
                v1 = blk.spatial(16, i)
                v2 = blk.spatial(32, i * 2)
                b.store(A, (v1, v2), 1.0)
        problems = verify(b.finish())
        assert any("quasi-affine" in p for p in problems)

    def test_out_of_domain_binding_flagged(self):
        from repro.tir import IRBuilder

        b = IRBuilder("oob")
        A = b.arg_buffer("A", (40, 1), "float32")
        with b.grid(16) as i:
            with b.block("oob") as blk:
                v1 = blk.spatial(16, i + 8)  # range [8, 24) outside [0, 16)
                b.store(A, (v1, 0), 1.0)
        problems = verify(b.finish())
        assert any("domain" in p for p in problems)

    def test_split_predicate_accepted(self):
        sch = Schedule(build_matmul(30, 32, 32))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.split(i, [None, 8])
        assert verify(sch.func) == []

    def test_consumer_coverage_flagged(self):
        # Producer covers only half the buffer the consumer reads.
        from repro.tir import IRBuilder, call

        b = IRBuilder("uncovered")
        A = b.arg_buffer("A", (16,), "float32")
        C = b.arg_buffer("C", (16,), "float32")
        B = b.alloc_buffer("B", (16,), "float32")
        with b.grid(8) as i:
            with b.block("B") as blk:
                vi = blk.spatial(8, i)
                b.store(B, (vi,), A[vi] + 1.0)
        with b.grid(16) as i:
            with b.block("C") as blk:
                vi = blk.spatial(16, i)
                b.store(C, (vi,), B[vi] * 2.0)
        problems = verify(b.finish())
        assert any("cover" in p for p in problems)

    def test_gpu_threading_limits(self):
        from repro.sim import SimGPU

        target = SimGPU()
        sch = Schedule(build_matmul(4096, 16, 16))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.bind(i, "threadIdx.x")  # 4096 threads > limit
        problems = verify(sch.func, target)
        assert any("exceeds" in p for p in problems)

    def test_gpu_inconsistent_thread_extents(self):
        # Two threadIdx.x loops with non-divisor extents inside ONE
        # kernel (one top-level nest) are inconsistent; separate nests
        # are separate kernel launches and may differ freely.
        from repro.sim import SimGPU
        from repro.tir import IRBuilder

        b = IRBuilder("two_tx")
        A = b.arg_buffer("A", (2, 32), "float32")
        B = b.arg_buffer("B", (2, 24), "float32")
        with b.serial(2, "o") as o:
            with b.thread_binding(32, "threadIdx.x", "t1") as t1:
                with b.block("w1") as blk:
                    vo = blk.spatial(2, o)
                    v1 = blk.spatial(32, t1)
                    b.store(A, (vo, v1), 1.0)
            with b.thread_binding(24, "threadIdx.x", "t2") as t2:
                with b.block("w2") as blk:
                    vo = blk.spatial(2, o, name="vo2")
                    v2 = blk.spatial(24, t2)
                    b.store(B, (vo, v2), 1.0)
        problems = verify(b.finish(), SimGPU())
        assert any("inconsistent" in p for p in problems)

    def test_gpu_separate_kernels_may_differ(self):
        from repro.sim import SimGPU

        sch = Schedule(build_matmul_relu(32))
        ci, cj, ck = sch.get_loops(sch.get_block("C"))
        di, dj = sch.get_loops(sch.get_block("D"))
        sch.bind(ci, "threadIdx.x")
        io, ii = sch.split(di, [None, 24])
        sch.bind(ii, "threadIdx.x")
        problems = verify(sch.func, SimGPU())
        assert not any("inconsistent" in p for p in problems)

    def test_gpu_shared_memory_capacity(self):
        from repro.sim import SimGPU

        target = SimGPU()
        sch = Schedule(build_matmul(512, 512, 512, dtype="float32"))
        sch.cache_read(sch.get_block("C"), 0, "shared")  # 1MB > 48KB
        problems = verify(sch.func, target)
        assert any("shared memory" in p for p in problems)

    def test_warp_intrinsic_inside_thread_x_flagged(self):
        from repro.sim import SimGPU

        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        c = sch.get_block("C")
        sch.cache_read(c, 0, "wmma.matrix_a")
        sch.cache_read(c, 1, "wmma.matrix_b")
        sch.cache_write(c, 0, "wmma.accumulator")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "wmma_16x16x16_f16")
        sch.bind(io, "threadIdx.x")  # illegal: warp intrinsic inside lanes
        problems = verify(sch.func, SimGPU())
        assert any("warp-scope" in p for p in problems)
