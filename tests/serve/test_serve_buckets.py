"""Bucket-aware serving (``ServeConfig.buckets``).

The contract: once a bucket representative is tuned, every other shape
in the bucket is served by adaptive replay with **zero** trials
(``source == "bucket-hit"``), two in-bucket shapes missing in one batch
window coalesce into **one** tuning run at the representative shape,
and an infeasible replay falls back to a fresh tune (``TIR702``) rather
than failing the request.
"""

import threading

from repro.frontend import ops
from repro.frontend.shapes import BucketSpec
from repro.meta import Telemetry, TuneConfig
from repro.serve import ScheduleServer, ServeConfig
from repro.sim import SimGPU

CFG = ServeConfig(
    tune=TuneConfig(trials=4, seed=0),
    buckets=BucketSpec.pow2("n"),
)


def _matmul(n):
    return ops.matmul(n, 32, 32)


def _conv(n):
    return ops.conv2d(n, 6, 6, 4, 4, 3, 3, dtype="float32")


class TestBucketHits:
    def test_unseen_in_bucket_shape_served_with_zero_trials(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            first = server.compile(_matmul(64))
            assert first.source == "miss" and first.trials > 0
            probe = server.compile(_matmul(56))
            assert probe.source == "bucket-hit"
            assert probe.trials == 0
            stats = server.stats()
        assert stats.bucket_hits == 1
        assert stats.replay_fallbacks == 0
        assert stats.tune_runs == 1

    def test_warm_bucket_hits_are_memoized_per_shape(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            server.compile(_matmul(64))
            cold = server.compile(_matmul(56))
            warm = server.compile(_matmul(56))
            assert warm.source == "bucket-hit" and warm.trials == 0
            assert warm.script == cold.script
            # A different in-bucket shape gets its own program.
            other = server.compile(_matmul(48))
            assert other.source == "bucket-hit"
            assert other.script != cold.script
            stats = server.stats()
        assert stats.bucket_hits == 3
        assert stats.tune_runs == 1

    def test_hit_rate_counts_bucket_hits(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            server.compile(_matmul(64))
            server.compile(_matmul(56))
            server.compile(_matmul(48))
            stats = server.stats()
        assert stats.hit_rate == 2 / 3
        payload = stats.to_json()
        assert payload["bucket_hits"] == 2
        assert "replay_fallbacks" in payload

    def test_telemetry_counter(self):
        telemetry = Telemetry()
        with ScheduleServer(SimGPU(), CFG, telemetry=telemetry) as server:
            server.compile(_matmul(64))
            server.compile(_matmul(56))
        assert telemetry.counters.get("serve.bucket_hits") == 1

    def test_exact_serving_unchanged_without_buckets(self):
        with ScheduleServer(SimGPU(), CFG.with_(buckets=None)) as server:
            server.compile(_matmul(64))
            probe = server.compile(_matmul(56))
            assert probe.source == "miss" and probe.trials > 0
            stats = server.stats()
        assert stats.bucket_hits == 0
        assert stats.tune_runs == 2


class TestInBucketCoalescing:
    def test_two_in_bucket_shapes_share_one_tuning_run(self):
        cfg = CFG.with_(batch_window_seconds=0.3)
        n = 2
        with ScheduleServer(SimGPU(), cfg) as server:
            barrier = threading.Barrier(n)
            responses = [None] * n

            def request(i, size):
                barrier.wait()
                responses[i] = server.compile(_matmul(size))

            threads = [
                threading.Thread(target=request, args=(i, size))
                for i, size in enumerate((100, 90))  # both bucket to 128
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()
        assert stats.tune_runs == 1
        assert stats.tuned_workloads == 1  # one rep tuned, not two shapes
        sources = sorted(r.source for r in responses)
        assert sources.count("miss") == 1
        assert sources.count("coalesced") == 1
        # The coalesced waiter paid zero trials; both got a program for
        # their own concrete shape.
        by_source = {r.source: r for r in responses}
        assert by_source["coalesced"].trials == 0
        assert responses[0].script != responses[1].script


class TestReplayFallback:
    def test_infeasible_replay_falls_back_to_fresh_tune(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            rep = server.compile(_conv(4))
            assert rep.source == "miss"
            probe = server.compile(_conv(3))
            stats = server.stats()
            if stats.replay_fallbacks == 0:
                # The decision vector happened to adapt at this budget —
                # then the probe is a plain bucket-hit.
                assert probe.source == "bucket-hit"
                return
            # Replay was infeasible: the request still got a tuned
            # program, with honest miss accounting and a TIR702 trail.
            assert probe.source == "miss" and probe.trials > 0
            assert stats.replay_fallbacks >= 1
            assert server.diagnostics.counts_by_code().get("TIR702", 0) >= 1
            # The fresh tune recorded the exact shape: next request hits.
            again = server.compile(_conv(3))
            assert again.source == "hit" and again.trials == 0
