"""Concurrency and consistency tests for the serving metrics layer.

The contracts: hammering ``submit()`` from many threads while other
threads read ``stats()``/``health()``/``metrics.snapshot()`` never
produces a torn read, the ``serve_requests_total`` counter sums to the
exact number of responses served, every response carries a unique
request-scoped trace id even under miss coalescing, and binding a
metrics registry never changes what a tuning run records.
"""

import json
import threading

from repro.frontend import ops
from repro.meta import Telemetry, TuneConfig
from repro.meta.session import TuningSession
from repro.obs import ObsConfig, Recorder
from repro.obs.metrics import MetricsRegistry
from repro.serve import ScheduleServer, ServeConfig
from repro.sim import SimGPU

CFG = ServeConfig(tune=TuneConfig(trials=4, seed=11))


def _matmul(n=64):
    return ops.matmul(n, n, n)


def _served_total(server):
    snap = server.metrics.snapshot()
    series = snap["metrics"]["serve_requests_total"]["series"]
    return series, sum(series.values())


class TestThreadedSubmitWithReaders:
    def test_counters_sum_to_requests_under_threads(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            func = _matmul()
            server.compile(func)  # the one miss
            threads, per_thread = 6, 200
            ids = [[] for _ in range(threads)]
            errors = []
            stop = threading.Event()

            def hammer(slot):
                for _ in range(per_thread):
                    resp = server.compile(func)
                    ids[slot].append(resp.request_id)
                    if resp.source != "hit":
                        errors.append(f"unexpected source {resp.source!r}")

            def reader():
                # Concurrent reads must always see internally
                # consistent documents, never a torn in-between state.
                while not stop.is_set():
                    stats = server.stats()
                    if stats.hits > stats.requests:
                        errors.append("stats torn: hits > requests")
                    health = server.health()
                    if not 0.0 <= health["error_rate"] <= 1.0:
                        errors.append("health torn: error_rate")
                    if not 0.0 <= health["hit_rate"] <= 1.0:
                        errors.append("health torn: hit_rate")
                    _, total = _served_total(server)
                    if total > stats.requests + threads * per_thread:
                        errors.append("counter exceeded possible requests")

            workers = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(threads)
            ]
            readers = [threading.Thread(target=reader) for _ in range(2)]
            for r in readers:
                r.start()
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            stop.set()
            for r in readers:
                r.join()

            assert not errors, errors[:5]
            expected = 1 + threads * per_thread
            stats = server.stats()
            assert stats.requests == expected
            series, total = _served_total(server)
            assert total == expected
            assert series["outcome=hit"] == threads * per_thread
            assert series["outcome=miss"] == 1
            flat = [rid for chunk in ids for rid in chunk]
            assert len(set(flat)) == len(flat), "request ids must be unique"

    def test_health_quantiles_match_snapshot_windows(self):
        from repro.serve.server import _HIT_LATENCY_SAMPLE

        with ScheduleServer(SimGPU(), CFG) as server:
            func = _matmul()
            for _ in range(40):
                server.compile(func)
            health = server.health()
            snap = server.metrics.snapshot()
            series = snap["metrics"]["serve_latency_seconds"]["series"]
            # Hit latencies are 1-in-N sampled while miss/coalesced are
            # fully staged; health() replicates each sampled hit N
            # times so pooled percentiles weight outcomes by true
            # request volume — mirror that here.
            window = sorted(
                v
                for key, s in series.items()
                for v in s["window"]
                for _ in range(
                    _HIT_LATENCY_SAMPLE if key == "outcome=hit" else 1
                )
            )
            assert window, "sampled hit latencies must reach the window"
            for field, q in (
                ("p50_seconds", 0.50),
                ("p95_seconds", 0.95),
                ("p99_seconds", 0.99),
            ):
                want = window[min(len(window) - 1, int(q * len(window)))]
                assert health[field] == want


class TestCoalescingTraceIds:
    def test_unique_request_ids_under_coalescing(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            func = _matmul(96)
            futures = [None] * 8
            barrier = threading.Barrier(len(futures))

            def submit(slot):
                barrier.wait()
                futures[slot] = server.submit(func)

            workers = [
                threading.Thread(target=submit, args=(i,))
                for i in range(len(futures))
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            responses = [f.result(timeout=120) for f in futures]
            rids = [r.request_id for r in responses]
            assert len(set(rids)) == len(rids)
            sources = {r.source for r in responses}
            assert sources <= {"miss", "coalesced", "hit"}
            scripts = {r.script for r in responses}
            assert len(scripts) == 1, "coalesced waiters share one program"
            stats = server.stats()
            series, total = _served_total(server)
            assert total == stats.requests == len(responses)
            assert series.get("outcome=coalesced", 0) == stats.coalesced


class TestConcurrentFolds:
    def test_parallel_folders_never_overdrain(self):
        # Regression: the count-based drain in _fold_serve_events reads
        # len() then pops that many items; unserialized concurrent
        # folders (registry collector + health + inline at the staging
        # threshold) could together pop more than were staged and
        # IndexError out of submit() or the tune-resolution loop.
        with ScheduleServer(SimGPU(), CFG) as server:
            events = server._m_events
            assert events is not None
            total = 20_000
            errors = []
            done = threading.Event()

            def producer():
                staged = events["miss"]
                for _ in range(total):
                    staged.append(0.001)
                done.set()

            def folder():
                while not done.is_set() or events["miss"]:
                    try:
                        server._fold_serve_events()
                    except IndexError as exc:  # pragma: no cover — the bug
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=producer)] + [
                threading.Thread(target=folder) for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, "concurrent folds over-drained the stage"
            snap = server.metrics.snapshot()
            hist = snap["metrics"]["serve_latency_seconds"]["series"][
                "outcome=miss"
            ]
            assert hist["count"] == total, "every staged event folds once"


class TestBoundedWindows:
    def test_hit_seconds_window_is_bounded(self):
        cfg = CFG.with_(stats_window=16)
        with ScheduleServer(SimGPU(), cfg) as server:
            func = _matmul()
            for _ in range(80):
                server.compile(func)
            stats = server.stats()
            assert len(stats.hit_seconds) <= 16
            assert stats.requests == 80
            # The histogram windows honour the same bound.
            snap = server.metrics.snapshot()
            series = snap["metrics"]["serve_latency_seconds"]["series"]
            for doc in series.values():
                assert len(doc["window"]) <= 16


class TestMetricsNeverPerturbRecordings:
    def test_recording_identical_with_and_without_registry(self):
        # Warm the process-global memo caches first: the very first run
        # in a process sees extra cold-cache activity (more CacheEvent
        # rows) regardless of any registry, which would mask the
        # comparison this test is actually making.
        # The warm-ups must record too: the trace-serialization cache
        # (obs.traces) only fills during recorded runs, and its misses
        # cascade into simplifier-memo activity.
        for _ in range(2):  # steady state takes two runs to reach
            warmup = TuningSession(
                SimGPU(),
                TuneConfig(trials=6, seed=23),
                recorder=Recorder(
                    ObsConfig(enabled=True), telemetry=Telemetry()
                ),
            )
            warmup.add(_matmul(48), name="gemm")
            warmup.run()
        docs = []
        for registry in (None, MetricsRegistry()):
            telemetry = Telemetry()
            recorder = Recorder(
                ObsConfig(enabled=True),
                telemetry=telemetry,
                metrics=registry,
            )
            session = TuningSession(
                SimGPU(),
                TuneConfig(trials=6, seed=23),
                recorder=recorder,
                metrics=registry,
            )
            session.add(_matmul(48), name="gemm")
            session.run()
            doc = recorder.recording()
            # Strip wall-clock-dependent fields; the *content* — trial
            # provenance, decisions, hashes, event kinds — must be
            # byte-identical whether or not a registry is bound.
            stable = {
                "trials": [
                    {
                        k: v
                        for k, v in trial.items()
                        if "seconds" not in k and "unix" not in k
                    }
                    for trial in doc["trials"]
                ],
                "event_kinds": [
                    e.get("kind") for e in doc["events"]
                ],
                "config": doc["config"],
            }
            docs.append(json.dumps(stable, sort_keys=True))
        assert docs[0] == docs[1]
