"""Tier-1 wiring for the serving-observability CI smoke.

Runs ``scripts/bench_hotpaths.py --serve-obs --smoke`` exactly as CI
would and asserts the ``serve_obs`` entry it merges into the bench
report carries the correctness gates green: identical best programs
with and without metrics, ``health()`` consistent with the latency
histograms, and request-scoped span trees that round-trip through the
Chrome-trace exporter.  Also runs ``scripts/check_api.py`` so the
documented public surface (including the metrics layer) is guarded by
the ordinary test run.
"""

import json
import os
import subprocess
import sys

REPO = os.path.join(os.path.dirname(__file__), "..", "..")


def _run(args, env=None):
    return subprocess.run(
        [sys.executable] + args,
        capture_output=True, text=True, env=env, timeout=600,
    )


def test_public_api_surface_holds():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = _run([os.path.join(REPO, "scripts", "check_api.py")], env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_serve_obs_smoke_writes_serve_obs_entry(tmp_path):
    out = tmp_path / "bench.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = _run(
        [
            os.path.join(REPO, "scripts", "bench_hotpaths.py"),
            "--serve-obs", "--smoke", "--out", str(out),
        ],
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    entry = report["serve_obs"]
    agg = entry["aggregate"]
    assert agg["ok"] is True
    assert agg["best_identical"] is True
    assert agg["health_consistent"] is True
    assert agg["span_trees_round_trip"] is True
    # Smoke runs skip the 2% timing gate (too noisy for CI) but must
    # still measure and report an overhead number.
    assert agg["timing_gate"] == "skipped (smoke)"
    assert isinstance(agg["warm_hit_overhead_pct"], float)
    # The span trees cover both a cold miss and a warm hit, each rooted
    # at a serve-span carrying its request id.
    for kind in ("miss", "hit"):
        tree = entry["span_trees"][kind]
        assert tree["round_trip"] is True
        assert tree["request_id"]
    health = entry["health"]
    assert health["metrics_enabled"] is True
    assert 0.0 <= health["error_rate"] <= 1.0
    for field in ("p50_seconds", "p95_seconds", "p99_seconds"):
        assert health[field] is not None
