"""Tier-1 wiring for the schedule-server CI smoke.

Runs ``scripts/bench_hotpaths.py --serve --smoke`` exactly as CI would
and asserts the ``schedule_serve`` entry it merges into the bench
report carries the acceptance numbers (hit rate, p50 hit latency,
coalesce factor) with the correctness gates green.
"""

import json
import os
import subprocess
import sys

REPO = os.path.join(os.path.dirname(__file__), "..", "..")


def test_serve_smoke_writes_schedule_serve_entry(tmp_path):
    out = tmp_path / "bench.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(REPO, "scripts", "bench_hotpaths.py"),
            "--serve", "--smoke", "--out", str(out),
        ],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    entry = report["schedule_serve"]
    agg = entry["aggregate"]
    assert agg["ok"] is True
    assert agg["warm_zero_trials"] is True
    assert agg["restart_identical"] is True
    assert agg["concurrent_tune_runs"] == 1
    assert agg["coalesce_factor"] >= 2.0
    assert agg["hit_rate"] > 0.5
    assert agg["p50_hit_latency_ms"] is not None
    assert agg["counters"]["serve.hits"] > 0
