"""Tests for the tuning-as-a-service surface (``repro.serve``).

The acceptance contract: warm requests are served from the database
with **zero** trials, a server restarted on the same persistent
directory serves **byte-identical** programs, and concurrent cache
misses for one workload coalesce into a **single** tuning run.
"""

import threading

import pytest

import repro
from repro.frontend import ops
from repro.meta import Telemetry, TuneConfig, TuningDatabase
from repro.meta.database import DatabaseEntry, workload_key
from repro.obs import ObsConfig, Recorder
from repro.serve import (
    Client,
    CompileResponse,
    ScheduleServer,
    ServeConfig,
    default_client,
    shutdown_default_servers,
)
from repro.sim import SimGPU

CFG = ServeConfig(tune=TuneConfig(trials=4, seed=11))


def _matmul(n=128):
    return ops.matmul(n, n, n)


class TestServeBasics:
    def test_miss_then_hit_zero_trials(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            first = server.compile(_matmul())
            assert first.source == "miss"
            assert first.trials > 0
            second = server.compile(_matmul())
            assert second.source == "hit"
            assert second.trials == 0
            assert second.script == first.script
            assert second.cycles == first.cycles

    def test_response_is_callable_program(self):
        import numpy as np

        with ScheduleServer(SimGPU(), CFG) as server:
            resp = server.compile(_matmul(64))
            assert isinstance(resp, CompileResponse)
            rng = np.random.default_rng(0)
            a = rng.random((64, 64)).astype("float16")
            b = rng.random((64, 64)).astype("float16")
            c = np.zeros((64, 64), dtype="float16")
            resp(a, b, c)
            np.testing.assert_allclose(
                c.astype("float32"),
                a.astype("float32") @ b.astype("float32"),
                rtol=5e-2, atol=5e-1,
            )

    def test_compile_programs_off(self):
        with ScheduleServer(SimGPU(), CFG.with_(compile_programs=False)) as server:
            resp = server.compile(_matmul(64))
            assert resp.compiled is None
            with pytest.raises(RuntimeError, match="no compiled function"):
                resp(None, None)

    def test_stats_accounting(self):
        with ScheduleServer(SimGPU(), CFG) as server:
            server.compile(_matmul())
            server.compile(_matmul())
            server.compile(_matmul())
            stats = server.stats()
        assert stats.requests == 3
        assert stats.misses == 1
        assert stats.hits == 2
        assert stats.tune_runs == 1
        assert 0 < stats.hit_rate < 1
        assert stats.p50_hit_seconds() is not None
        payload = stats.to_json()
        assert payload["hits"] == 2 and "coalesce_factor" in payload

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        with ScheduleServer(SimGPU(), CFG, telemetry=telemetry) as server:
            server.compile(_matmul())
            server.compile(_matmul())
        assert telemetry.counters.get("serve.misses") == 1
        assert telemetry.counters.get("serve.hits") == 1
        assert telemetry.counters.get("serve.tune_runs") == 1

    def test_recorder_events(self):
        recorder = Recorder(ObsConfig(enabled=True))
        with ScheduleServer(SimGPU(), CFG, recorder=recorder) as server:
            server.compile(_matmul())
            server.compile(_matmul())
        events = recorder.stream.events("serve-request")
        sources = [e["source"] for e in events]
        assert sources == ["miss", "hit"]
        assert events[1]["trials"] == 0

    def test_unreplayable_record_is_evicted_and_retuned(self):
        db = TuningDatabase()
        func = _matmul()
        key = workload_key(func, SimGPU())
        db.put(
            DatabaseEntry(
                key=key, workload=func.name, target="sim-gpu",
                sketch="no-such-sketch", decisions=[], cycles=1.0,
            )
        )
        with ScheduleServer(SimGPU(), CFG, database=db) as server:
            resp = server.compile(func)
        assert resp.source == "miss"
        assert db.get(key).sketch != "no-such-sketch"

    def test_submit_after_close_raises(self):
        server = ScheduleServer(SimGPU(), CFG)
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(_matmul())


class TestPersistenceAcrossRestart:
    def test_restart_serves_byte_identical(self, tmp_path):
        cfg = CFG.with_(db_path=str(tmp_path / "db"))
        with ScheduleServer(SimGPU(), cfg) as server:
            first = server.compile(_matmul())
            assert first.source == "miss"
        with ScheduleServer(SimGPU(), cfg) as server:
            again = server.compile(_matmul())
        assert again.source == "hit"
        assert again.trials == 0
        assert again.script == first.script
        assert again.cycles == first.cycles


class TestCoalescing:
    def test_concurrent_misses_one_tuning_run(self):
        """N concurrent clients, same workload → one tuning run."""
        cfg = CFG.with_(batch_window_seconds=0.3)
        n = 4
        with ScheduleServer(SimGPU(), cfg) as server:
            barrier = threading.Barrier(n)
            responses = [None] * n

            def request(i):
                barrier.wait()
                responses[i] = server.compile(_matmul())

            threads = [threading.Thread(target=request, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()
        sources = sorted(r.source for r in responses)
        assert sources.count("miss") == 1
        assert sources.count("coalesced") + sources.count("hit") == n - 1
        assert stats.tune_runs == 1
        assert stats.tuned_workloads == 1
        assert len({r.script for r in responses}) == 1
        assert all(r.trials == 0 for r in responses if r.source != "miss")
        assert stats.coalesce_factor >= 2.0

    def test_distinct_workloads_share_one_session(self):
        cfg = CFG.with_(batch_window_seconds=0.3)
        with ScheduleServer(SimGPU(), cfg) as server:
            futures = [
                server.submit(_matmul(128)),
                server.submit(ops.matmul(128, 128, 256)),
            ]
            responses = [f.result(timeout=120) for f in futures]
            stats = server.stats()
        assert {r.source for r in responses} == {"miss"}
        assert stats.tune_runs == 1
        assert stats.tuned_workloads == 2


class TestClientSurface:
    def test_client_wraps_server(self):
        with Client(ScheduleServer(SimGPU(), CFG)) as client:
            resp = client.compile(_matmul())
            assert resp.source == "miss"
            assert client.submit(_matmul()).result(timeout=60).source == "hit"
            assert client.stats().requests == 2
            assert client.target.name == SimGPU().name

    def test_repro_compile_routes_through_client(self):
        with Client(ScheduleServer(SimGPU(), CFG)) as client:
            first = repro.compile(_matmul(), SimGPU(), client=client)
            second = repro.compile(_matmul(), SimGPU(), client=client)
        assert first.source == "miss"
        assert second.source == "hit"
        assert second.script == first.script

    def test_default_client_is_shared_and_recreated(self):
        shutdown_default_servers()
        try:
            c1 = default_client(SimGPU(), CFG)
            c2 = default_client(SimGPU(), CFG)
            assert c1.server is c2.server
            c1.close()
            c3 = default_client(SimGPU(), CFG)
            assert c3.server is not c1.server
        finally:
            shutdown_default_servers()

    def test_top_level_exports(self):
        assert repro.ScheduleServer is ScheduleServer
        assert repro.ServeConfig is ServeConfig
        assert repro.Client is Client
        assert callable(repro.compile)
