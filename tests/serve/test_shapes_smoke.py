"""Tier-1 wiring for the shape-bucketing CI smoke.

Runs ``scripts/bench_hotpaths.py --shapes --smoke`` exactly as CI would
and asserts the ``shape_buckets`` entry it merges into the bench report
carries the acceptance numbers: unseen in-bucket shapes served with
zero trials, bounded latency regression, oracle-equal numerics.
"""

import json
import os
import subprocess
import sys

REPO = os.path.join(os.path.dirname(__file__), "..", "..")


def test_shapes_smoke_writes_shape_buckets_entry(tmp_path):
    out = tmp_path / "bench.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(REPO, "scripts", "bench_hotpaths.py"),
            "--shapes", "--smoke", "--out", str(out),
        ],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    entry = report["shape_buckets"]
    agg = entry["aggregate"]
    assert agg["ok"] is True
    assert agg["unseen_zero_trials"] is True
    assert agg["all_numerics_ok"] is True
    assert agg["unseen_probes"] >= 3
    assert agg["max_latency_ratio"] <= 1.25
    for sweep in entry["sweeps"].values():
        probes = [r for r in sweep["shapes"] if r["phase"] == "unseen"]
        assert probes and all(
            r["source"] in ("hit", "bucket-hit") for r in probes
        )
        assert sweep["stats"]["bucket_hits"] >= 1
