"""Tests for the simulated targets and the analytical performance model.

The model's job is to order schedules the way real hardware would; these
tests pin the orderings the evaluation depends on.
"""

import pytest

from repro.schedule import Schedule
from repro.sim import CostModelError, PerfReport, SimCPU, SimGPU, estimate

from ..common import build_matmul


def _tensorized_gemm(n, seed=0):
    from repro.meta.sketch import TensorCoreSketch

    sch = Schedule(build_matmul(n, n, n, dtype="float16"), seed=seed)
    TensorCoreSketch().apply(sch)
    return sch.func


def _scalar_gemm(n, seed=0):
    from repro.meta.sketch import GpuScalarSketch
    from repro.schedule import ScheduleError

    for s in range(seed, seed + 10):
        sch = Schedule(build_matmul(n, n, n, dtype="float16"), seed=s)
        try:
            GpuScalarSketch().apply(sch)
            return sch.func
        except ScheduleError:
            continue
    raise AssertionError("no valid scalar schedule found")


class TestTargets:
    def test_gpu_limits(self):
        t = SimGPU()
        assert t.max_thread_extent("threadIdx.x") == 1024
        assert t.shared_memory_per_block == 48 * 1024
        assert t.cycles_to_seconds(t.clock_ghz * 1e9) == pytest.approx(1.0)

    def test_tensor_unit_ratio(self):
        # The modelled tensor-unit advantage over the scalar pipeline
        # must be substantial (the paper's premise).
        t = SimGPU()
        assert t.tensor_flops_per_cycle / t.scalar_flops_per_cycle >= 4

    def test_cpu_sdot_ratio(self):
        t = SimCPU()
        assert t.sdot_flops_per_cycle / t.scalar_ops_per_cycle >= 8


class TestEstimates:
    def test_unscheduled_is_slow(self):
        # A serial program has no parallelism: terrible occupancy.
        func = build_matmul(64, 64, 64, dtype="float16")
        report = estimate(func, SimGPU())
        assert isinstance(report, PerfReport)
        assert report.cycles > 2e3

    def test_binding_threads_helps(self):
        base = build_matmul(256, 256, 256, dtype="float16")
        plain = estimate(base, SimGPU()).cycles
        sch = Schedule(build_matmul(256, 256, 256, dtype="float16"))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.bind(i, "blockIdx.x")
        sch.bind(j, "threadIdx.x")
        bound = estimate(sch.func, SimGPU()).cycles
        assert bound < plain / 5

    def test_tensorization_beats_scalar(self):
        tensor = estimate(_tensorized_gemm(256), SimGPU()).cycles
        scalar = estimate(_scalar_gemm(256), SimGPU()).cycles
        assert tensor < scalar

    def test_tensorized_gemm_is_memory_bound(self):
        # §4.3's motivation: with tensor units, data movement becomes
        # the bottleneck.
        report = estimate(_tensorized_gemm(256), SimGPU())
        assert report.bound in ("global", "shared")

    def test_bigger_problem_costs_more(self):
        small = estimate(_tensorized_gemm(128), SimGPU()).cycles
        big = estimate(_tensorized_gemm(512), SimGPU()).cycles
        assert big > small

    def test_caching_reduces_global_traffic(self):
        # compute_at a shared cache reduces the counted global bytes.
        def traffic(with_cache):
            sch = Schedule(build_matmul(128, 128, 128))
            c = sch.get_block("C")
            i, j, k = sch.get_loops(c)
            io, ii = sch.split(i, [8, None])
            if with_cache:
                pass
            sch.bind(io, "blockIdx.x")
            sch.bind(ii, "threadIdx.x")
            if with_cache:
                copy = sch.cache_read(c, 0, "shared")
                sch.compute_at(copy, io)
            report = estimate(sch.func, SimGPU())
            return report.counts["global_bytes"]

        assert traffic(True) < traffic(False)

    def test_vectorized_copy_is_cheaper(self):
        def cycles(vectorize):
            sch = Schedule(build_matmul(128, 128, 128))
            c = sch.get_block("C")
            copy = sch.cache_read(c, 0, "shared")
            loops = sch.get_loops(copy)
            fused = sch.fuse(*loops)
            parts = sch.split(fused, [None, 256, 4])
            sch.bind(parts[0], "blockIdx.x")
            sch.bind(parts[1], "threadIdx.x")
            if vectorize:
                sch.vectorize(parts[2])
            return estimate(sch.func, SimGPU()).cycles

        assert cycles(True) <= cycles(False)

    def test_cpu_parallel_helps(self):
        def cycles(par):
            sch = Schedule(build_matmul(128, 128, 128))
            i, j, k = sch.get_loops(sch.get_block("C"))
            if par:
                sch.parallel(i)
            return estimate(sch.func, SimCPU()).cycles

        assert cycles(True) < cycles(False)

    def test_cpu_sdot_beats_scalar(self):
        from repro.meta.sketch import CpuScalarSketch, CpuSdotSketch
        from repro.tir import Cast, IRBuilder

        def qgemm():
            b = IRBuilder("qgemm")
            A = b.arg_buffer("A", (256, 256), "int8")
            B = b.arg_buffer("B", (256, 256), "int8")
            C = b.arg_buffer("C", (256, 256), "int32")
            with b.grid(256, 256, 256) as (i, j, k):
                with b.block("C") as blk:
                    vi = blk.spatial(256, i)
                    vj = blk.spatial(256, j)
                    vk = blk.reduce(256, k)
                    with blk.init():
                        b.store(C, (vi, vj), 0)
                    b.store(
                        C,
                        (vi, vj),
                        C[vi, vj] + Cast("int32", A[vi, vk]) * Cast("int32", B[vk, vj]),
                    )
            return b.finish()

        sdot = Schedule(qgemm(), seed=1)
        CpuSdotSketch().apply(sdot)
        scalar = Schedule(qgemm(), seed=1)
        CpuScalarSketch().apply(scalar)
        t = SimCPU()
        assert estimate(sdot.func, t).cycles < estimate(scalar.func, t).cycles

    def test_symbolic_extent_rejected(self):
        from repro.tir import (
            Buffer,
            BufferStore,
            For,
            PrimFunc,
            Var,
        )

        n = Var("n")
        buf = Buffer("A", (1024,), "float32")
        i = Var("i")
        body = For(i, 0, n, "serial", BufferStore(buf, 1.0, [i]))
        handle = Var("A", "handle")
        func = PrimFunc([handle], {handle: buf}, body)
        with pytest.raises(CostModelError):
            estimate(func, SimGPU())
