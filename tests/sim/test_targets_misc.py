"""Additional target and dtype plumbing tests."""

import numpy as np
import pytest

from repro.sim import SimCPU, SimGPU
from repro.tir import dtype as dt


class TestDtypeNumpy:
    def test_numpy_mapping(self):
        assert dt.numpy_dtype("float16") == np.float16
        assert dt.numpy_dtype("int8") == np.int8
        assert dt.numpy_dtype("bool") == np.bool_

    def test_bytes_of(self):
        assert dt.bytes_of("float16") == 2
        assert dt.bytes_of("int32") == 4
        assert dt.bytes_of("bool") == 1


class TestTargetTables:
    def test_gpu_compute_intrins_registered(self):
        from repro.intrin import get_intrin

        for name in SimGPU.compute_intrins:
            assert get_intrin(name).kind == "compute"
        for name in SimCPU.compute_intrins:
            assert get_intrin(name).kind == "compute"

    def test_vthread_limit(self):
        assert SimGPU().max_thread_extent("vthread") == 16

    def test_cpu_thread_interface(self):
        t = SimCPU()
        assert t.max_thread_extent("threadIdx.x") == 1
        assert t.cycles_to_seconds(2.5e9) == pytest.approx(1.0)

    def test_memory_hierarchy_ordering(self):
        t = SimCPU()
        assert t.l1_bytes_per_cycle > t.l2_bytes_per_cycle > t.dram_bytes_per_cycle
        g = SimGPU()
        assert g.l2_bytes_per_cycle > g.global_bytes_per_cycle
