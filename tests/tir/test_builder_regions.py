"""Tests for the IR builder and automatic access-region detection."""

import pytest

from repro.tir import (
    Block,
    BlockRealize,
    For,
    IRBuilder,
    IterVar,
    SeqStmt,
    Var,
    const_int_value,
    expr_str,
)
from repro.tir.analysis import detect_block_access_regions

from ..common import build_elementwise_chain, build_matmul, build_matmul_relu


def _find_block(stmt, name):
    """Find the BlockRealize of the named block in a stmt tree."""
    from repro.tir import post_order_visit

    found = []

    def visit(node):
        if isinstance(node, BlockRealize) and node.block.name_hint == name:
            found.append(node)

    post_order_visit(stmt, visit)
    assert found, f"block {name} not found"
    return found[0]


class TestBuilder:
    def test_matmul_structure(self):
        f = build_matmul(16, 16, 16)
        assert f.name == "matmul"
        assert len(f.params) == 3
        root = f.body.block
        assert root.name_hint == "root"
        # Root body: three nested loops then the block.
        loop = root.body
        depth = 0
        while isinstance(loop, For):
            depth += 1
            loop = loop.body
        assert depth == 3
        assert isinstance(loop, BlockRealize)

    def test_matmul_block_signature(self):
        f = build_matmul(16, 16, 16)
        realize = _find_block(f.body, "C")
        block = realize.block
        kinds = [iv.kind for iv in block.iter_vars]
        assert kinds == [IterVar.SPATIAL, IterVar.SPATIAL, IterVar.REDUCE]
        assert block.init is not None
        read_names = sorted(r.buffer.name for r in block.reads)
        assert read_names == ["A", "B"]
        assert [w.buffer.name for w in block.writes] == ["C"]

    def test_self_read_of_reduction_dropped(self):
        # C[vi,vj] += ... reads C, but the covered self-read must not
        # appear in the signature (it is implied by the write).
        f = build_matmul(8, 8, 8)
        block = _find_block(f.body, "C").block
        assert all(r.buffer.name != "C" for r in block.reads)

    def test_alloc_buffer_lands_on_root(self):
        f = build_elementwise_chain(8)
        root = f.body.block
        assert [b.name for b in root.alloc_buffers] == ["B"]

    def test_unique_loop_names(self):
        f = build_elementwise_chain(8)
        from repro.tir import collect_vars

        names = [v.name for v in collect_vars(f.body) if v.dtype == "int32"]
        assert len(names) == len(set(names))

    def test_unclosed_context_rejected(self):
        b = IRBuilder()
        cm = b.grid(4)
        cm.__enter__()
        with pytest.raises(RuntimeError):
            b.finish()

    def test_grid_single_var(self):
        b = IRBuilder()
        A = b.arg_buffer("A", (4,), "float32")
        with b.grid(4) as i:
            assert isinstance(i, Var)
            with b.block("A") as blk:
                vi = blk.spatial(4, i)
                b.store(A, (vi,), 1.0)
        f = b.finish()
        assert isinstance(f.body.block.body, For)

    def test_explicit_reads_writes_override(self):
        b = IRBuilder()
        A = b.arg_buffer("A", (4, 4), "float32")
        C = b.arg_buffer("C", (4, 4), "float32")
        with b.grid(4) as i:
            with b.block("row") as blk:
                vi = blk.spatial(4, i)
                blk.reads(A.full_region())
                blk.writes(C.full_region())
                b.store(C, (vi, 0), A[vi, 0])
        f = b.finish()
        block = _find_block(f.body, "row").block
        assert block.reads[0].is_full()
        assert block.writes[0].is_full()

    def test_loop_allocation_rejected(self):
        b = IRBuilder()
        A = b.arg_buffer("A", (4,), "float32")
        with pytest.raises(ValueError):
            with b.grid(4) as i:
                b.alloc_buffer("tmp", (4,), "float32")
                with b.block("blk") as blk:
                    vi = blk.spatial(4, i)
                    b.store(A, (vi,), 1.0)


class TestRegionDetection:
    def test_strided_window_region(self):
        # Figure 5's shape: inner 4x4 loops below block iterators.
        b = IRBuilder()
        A = b.arg_buffer("A", (64, 64), "float32")
        C = b.arg_buffer("C", (64, 64), "float32")
        with b.grid(16, 16) as (io, jo):
            with b.block("tile") as blk:
                vi = blk.spatial(16, io)
                vj = blk.spatial(16, jo)
                with b.grid(4, 4, names=["ii", "jj"]) as (ii, jj):
                    b.store(C, (vi * 4 + ii, vj * 4 + jj), A[vi * 4 + ii, vj * 4 + jj])
        f = b.finish()
        block = _find_block(f.body, "tile").block
        (read,) = block.reads
        assert expr_str(read.region[0].min) == "vi * 4"
        assert const_int_value(read.region[0].extent) == 4
        assert const_int_value(read.region[1].extent) == 4

    def test_full_dim_read(self):
        b = IRBuilder()
        A = b.arg_buffer("A", (8, 32), "float32")
        C = b.arg_buffer("C", (8,), "float32")
        with b.grid(8) as i:
            with b.block("rowsum") as blk:
                vi = blk.spatial(8, i)
                with b.grid(32, names=["k"]) as k:
                    b.store(C, (vi,), C[vi] + A[vi, k])
        f = b.finish()
        block = _find_block(f.body, "rowsum").block
        (read,) = [r for r in block.reads if r.buffer.name == "A"]
        assert const_int_value(read.region[1].min) == 0
        assert const_int_value(read.region[1].extent) == 32

    def test_nested_block_signature_trusted(self):
        # Outer block must derive its region from the inner block's
        # signature, substituted and relaxed over the outer loop.
        b = IRBuilder()
        A = b.arg_buffer("A", (64,), "float32")
        C = b.arg_buffer("C", (64,), "float32")
        with b.grid(4, names=["io"]) as io:
            with b.block("outer") as outer:
                vo = outer.spatial(4, io, name="vo")
                with b.grid(16, names=["ii"]) as ii:
                    with b.block("inner") as inner:
                        vi = inner.spatial(64, vo * 16 + ii)
                        b.store(C, (vi,), A[vi] * 2.0)
        f = b.finish()
        block = _find_block(f.body, "outer").block
        (read,) = block.reads
        assert expr_str(read.region[0].min) == "vo * 16"
        assert const_int_value(read.region[0].extent) == 16

    def test_multiple_access_union(self):
        b = IRBuilder()
        A = b.arg_buffer("A", (66,), "float32")
        C = b.arg_buffer("C", (64,), "float32")
        with b.grid(64) as i:
            with b.block("stencil") as blk:
                vi = blk.spatial(64, i)
                b.store(C, (vi,), A[vi] + A[vi + 1] + A[vi + 2])
        f = b.finish()
        block = _find_block(f.body, "stencil").block
        (read,) = block.reads
        assert expr_str(read.region[0].min) == "vi"
        assert const_int_value(read.region[0].extent) == 3

    def test_matmul_relu_intermediate_regions(self):
        f = build_matmul_relu(8)
        d_block = _find_block(f.body, "D").block
        assert [r.buffer.name for r in d_block.reads] == ["C"]
        assert [w.buffer.name for w in d_block.writes] == ["D"]
