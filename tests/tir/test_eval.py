"""Tests for concrete expression evaluation."""

import math

import numpy as np
import pytest

from repro.tir import (
    Buffer,
    Cast,
    Select,
    Var,
    call,
    const,
    evaluate_expr,
)


class TestEvaluate:
    def test_arith(self):
        x, y = Var("x"), Var("y")
        env = {x: 7, y: 3}
        assert evaluate_expr(x + y, env) == 10
        assert evaluate_expr(x * y - 1, env) == 20
        assert evaluate_expr(x // y, env) == 2
        assert evaluate_expr(x % y, env) == 1

    def test_floor_semantics_negative(self):
        x = Var("x")
        assert evaluate_expr(x // 4, {x: -5}) == -2
        assert evaluate_expr(x % 4, {x: -5}) == 3

    def test_comparisons_and_logic(self):
        from repro.tir import logical_and

        x = Var("x")
        assert evaluate_expr(logical_and(x > 0, x < 10), {x: 5}) is True
        assert evaluate_expr(logical_and(x > 0, x < 10), {x: 11}) is False

    def test_select(self):
        x = Var("x")
        e = Select(x > 0, x * 2, x * -1)
        assert evaluate_expr(e, {x: 3}) == 6
        assert evaluate_expr(e, {x: -3}) == 3

    def test_cast_float16_rounds(self):
        x = Var("x", "float32")
        e = Cast("float16", x)
        out = evaluate_expr(e, {x: 1.0001})
        assert out == float(np.float16(1.0001))

    def test_cast_int_wraps(self):
        x = Var("x", "int32")
        assert evaluate_expr(Cast("int8", x), {x: 130}) == -126
        assert evaluate_expr(Cast("uint8", x), {x: 260}) == 4

    def test_intrinsics(self):
        x = Var("x", "float32")
        assert evaluate_expr(call("exp", x), {x: 0.0}) == 1.0
        assert evaluate_expr(call("sqrt", x), {x: 4.0}) == 2.0
        assert math.isclose(evaluate_expr(call("sigmoid", x), {x: 0.0}), 0.5)

    def test_unknown_intrinsic_raises(self):
        with pytest.raises(KeyError):
            evaluate_expr(call("accel.mystery", const(1.0)), {})

    def test_buffer_load(self):
        buf = Buffer("A", (2, 2), "float32")
        arr = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        i = Var("i")
        assert evaluate_expr(buf[i, 1], {i: 1}, {buf: arr}) == 4.0

    def test_buffer_load_without_env_raises(self):
        buf = Buffer("A", (2,), "float32")
        with pytest.raises(KeyError):
            evaluate_expr(buf[0], {})

    def test_unbound_var_raises(self):
        with pytest.raises(KeyError):
            evaluate_expr(Var("x") + 1, {})
