"""Unit tests for the expression IR."""

import pytest

from repro.tir import (
    Add,
    BufferLoad,
    Buffer,
    Cast,
    FloatImm,
    FloorDiv,
    FloorMod,
    IntImm,
    Min,
    Max,
    Mul,
    Select,
    Sub,
    Var,
    as_expr,
    const,
    const_int_value,
    is_const_int,
    max_expr,
    min_expr,
)
from repro.tir import dtype as dt


class TestDtype:
    def test_bits(self):
        assert dt.bits_of("float16") == 16
        assert dt.bits_of("int8") == 8
        assert dt.bits_of("bool") == 1

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            dt.validate_dtype("float8")

    def test_promotion_float_beats_int(self):
        assert dt.promote("float16", "int32") == "float16"
        assert dt.promote("int8", "float32") == "float32"

    def test_promotion_wider_wins(self):
        assert dt.promote("int8", "int32") == "int32"
        assert dt.promote("float32", "float16") == "float32"

    def test_promotion_bool(self):
        assert dt.promote("bool", "int32") == "int32"

    def test_handle_not_promotable(self):
        with pytest.raises(TypeError):
            dt.promote("handle", "int32")


class TestConstruction:
    def test_const_int(self):
        c = const(3)
        assert isinstance(c, IntImm)
        assert c.value == 3 and c.dtype == "int32"

    def test_const_float(self):
        c = const(1.5)
        assert isinstance(c, FloatImm)
        assert c.value == 1.5 and c.dtype == "float32"

    def test_const_bool(self):
        c = const(True)
        assert isinstance(c, IntImm) and c.dtype == "bool" and c.value == 1

    def test_const_int_to_float_dtype(self):
        c = const(2, "float16")
        assert isinstance(c, FloatImm) and c.dtype == "float16"

    def test_var_identity(self):
        a = Var("i")
        b = Var("i")
        assert a is not b
        assert a.name == b.name

    def test_operator_overloads_build_nodes(self):
        i, j = Var("i"), Var("j")
        e = i * 4 + j
        assert isinstance(e, Add)
        assert isinstance(e.a, Mul)
        assert e.a.a is i and e.b is j

    def test_dtype_propagation(self):
        x = Var("x", "float16")
        y = Var("y", "float32")
        assert (x * y).dtype == "float32"
        assert (x + x).dtype == "float16"

    def test_int_scalar_coerced_to_var_dtype(self):
        x = Var("x", "int64")
        e = x + 1
        assert e.b.dtype == "int64"

    def test_comparison_dtype_bool(self):
        i = Var("i")
        assert (i < 3).dtype == "bool"
        assert (i.equal(3)).dtype == "bool"

    def test_truediv_on_int_rejected(self):
        i = Var("i")
        with pytest.raises(TypeError):
            i / 2

    def test_bool_conversion_rejected(self):
        i = Var("i")
        with pytest.raises(TypeError):
            bool(i < 3)

    def test_floordiv_mod(self):
        i = Var("i")
        assert isinstance(i // 4, FloorDiv)
        assert isinstance(i % 4, FloorMod)


class TestConstantFolding:
    def test_add_folds(self):
        e = const(2) + const(3)
        assert is_const_int(e, 5)

    def test_mul_folds(self):
        assert const_int_value(const(4) * const(6)) == 24

    def test_floordiv_negative_floor_semantics(self):
        assert const_int_value(const(-5) // const(4)) == -2
        assert const_int_value(const(-5) % const(4)) == 3

    def test_const_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            const(3) // const(0)

    def test_min_max_fold(self):
        assert const_int_value(min_expr(3, 7)) == 3
        assert const_int_value(max_expr(3, 7)) == 7

    def test_cmp_fold(self):
        assert const_int_value(const(3) < const(4)) == 1
        assert const_int_value(const(4) <= const(3)) == 0

    def test_float_add_folds(self):
        e = const(1.5) + const(2.5)
        assert isinstance(e, FloatImm) and e.value == 4.0

    def test_unfoldable_stays_node(self):
        i = Var("i")
        assert isinstance(i + 0, Add)  # light folding only folds imm-imm


class TestSelectCastLoad:
    def test_select_dtype(self):
        c = Var("c", "bool")
        s = Select(c, const(1.0), const(2.0))
        assert s.dtype == "float32"

    def test_cast_astype_noop(self):
        x = Var("x", "float32")
        assert x.astype("float32") is x
        assert isinstance(x.astype("float16"), Cast)

    def test_buffer_load_rank_check(self):
        buf = Buffer("A", (4, 4), "float32")
        with pytest.raises(ValueError):
            BufferLoad(buf, [Var("i")])

    def test_buffer_getitem(self):
        buf = Buffer("A", (4, 4), "float32")
        i = Var("i")
        load = buf[i, 2]
        assert isinstance(load, BufferLoad)
        assert load.dtype == "float32"
        assert load.buffer is buf


class TestHelpers:
    def test_as_expr_passthrough(self):
        i = Var("i")
        assert as_expr(i) is i

    def test_const_int_value_python_int(self):
        assert const_int_value(7) == 7
        assert const_int_value(Var("i")) is None

    def test_is_const_int_with_value(self):
        assert is_const_int(const(3), 3)
        assert not is_const_int(const(3), 4)
        assert not is_const_int(True)  # bool is not an int immediate here
