"""Tests for the TensorIntrin registry (§4.1)."""

import numpy as np
import pytest

from repro.intrin import TensorIntrin, get_intrin, list_intrins, register_intrin
from repro.tir import IRBuilder


class TestRegistry:
    def test_builtins_registered(self):
        names = list_intrins()
        assert "wmma_16x16x16_f16" in names
        assert "sdot_4x4x4_i8" in names

    def test_kind_filter(self):
        computes = list_intrins(kind="compute")
        assert "wmma_16x16x16_f16" in computes
        assert "wmma_fill_16x16_f16" not in computes
        assert "wmma_load_16x16_f16_a" in list_intrins(kind="load")

    def test_duplicate_registration_rejected(self):
        intrin = get_intrin("wmma_16x16x16_f16")
        with pytest.raises(ValueError):
            register_intrin(intrin)
        register_intrin(intrin, override=True)  # explicit override allowed

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            get_intrin("nope")

    def test_tile_shape_and_roles(self):
        mma = get_intrin("wmma_16x16x16_f16")
        assert mma.tile_shape() == (16, 16, 16)
        block = mma.desc_block()
        buffers = [r.buffer for r in list(block.reads) + list(block.writes)]
        roles = {mma.operand_role(b) for b in buffers}
        assert roles == {"A", "B", "C"}

    def test_paired_instructions(self):
        mma = get_intrin("wmma_16x16x16_f16")
        assert mma.paired["fill"] == "wmma_fill_16x16_f16"
        assert mma.paired["store"] == "wmma_store_16x16_f16"
        sdot = get_intrin("sdot_4x4x4_i8")
        assert sdot.paired["fill"] == "sdot_fill_i32"

    def test_desc_computation_cached_and_flat(self):
        mma = get_intrin("wmma_16x16x16_f16")
        c1 = mma.desc_computation()
        c2 = mma.desc_computation()
        assert c1 is c2  # cached
        from repro.tir import For

        assert isinstance(c1, For)  # flattened loops, no block wrapper

    def test_numpy_impls(self):
        mma = get_intrin("wmma_16x16x16_f16")
        A = np.random.default_rng(0).uniform(-1, 1, (16, 16)).astype(np.float16)
        B = np.random.default_rng(1).uniform(-1, 1, (16, 16)).astype(np.float16)
        C = np.zeros((16, 16), dtype=np.float16)
        mma.numpy_impl(A, B, C)
        ref = A.astype(np.float32) @ B.astype(np.float32)
        np.testing.assert_allclose(C.astype(np.float32), ref, atol=0.05)
        fill = get_intrin("wmma_fill_16x16_f16")
        fill.numpy_impl(C)
        assert (C == 0).all()

    def test_malformed_desc_rejected(self):
        b = IRBuilder("bad_desc")
        A = b.arg_buffer("A", (4,), "float32")
        with b.grid(4) as i:
            with b.block("one") as blk:
                vi = blk.spatial(4, i)
                b.store(A, (vi,), 1.0)
        with b.grid(4) as i:
            with b.block("two") as blk:
                vi = blk.spatial(4, i)
                b.store(A, (vi,), 2.0)
        bad = TensorIntrin("bad", b.finish(), {}, lambda: None, {})
        with pytest.raises(ValueError):
            bad.desc_block()
