"""Round-trip tests: parse(script(f)) is structurally equal to f.

Covers the §3.4 workflow — programs can be dumped as text, inspected,
modified and re-imported — and property-tests the round-trip over the
full scheduling surface (random primitive sequences).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.runtime import random_args, run
from repro.schedule import Schedule
from repro.tir import ParseError, parse_script, script, structural_equal

from ..common import build_elementwise_chain, build_matmul, build_matmul_relu
from ..schedule.test_property_semantics import _OPS, _apply_random_primitives


class TestRoundtrip:
    def test_basic_programs(self):
        for builder in (build_matmul, build_matmul_relu, build_elementwise_chain):
            func = builder(16)
            again = parse_script(script(func))
            assert structural_equal(func, again), builder.__name__

    def test_scheduled_program_with_threads_and_annotations(self):
        sch = Schedule(build_matmul(32, 32, 32))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 8])
        sch.bind(io, "blockIdx.x")
        sch.bind(j, "threadIdx.x")
        sch.vectorize(ii)
        sch.unroll(k)
        sch.annotate(io, "pragma", 4)
        sch.annotate(c, "hint", "zzz")
        text = sch.show()
        again = parse_script(text)
        assert structural_equal(sch.func, again)

    def test_tensorized_program(self):
        sch = Schedule(build_matmul(64, 64, 64, dtype="float16"))
        c = sch.get_block("C")
        i, j, k = sch.get_loops(c)
        io, ii = sch.split(i, [None, 16])
        jo, ji = sch.split(j, [None, 16])
        ko, ki = sch.split(k, [None, 16])
        sch.reorder(io, jo, ko, ii, ji, ki)
        sch.decompose_reduction(c, ko)
        sch.tensorize(ii, "wmma_16x16x16_f16")
        again = parse_script(sch.show())
        assert structural_equal(sch.func, again)

    def test_parsed_program_executes(self):
        func = parse_script(script(build_matmul(16, 16, 16)))
        args = random_args(func)
        run(func, args)
        ref = args["A"].astype(np.float64) @ args["B"].astype(np.float64)
        np.testing.assert_allclose(args["C"], ref, rtol=1e-3, atol=1e-5)

    def test_hand_written_script(self):
        text = """
@script
def scale(A: Buffer[(8,), 'float32'], C: Buffer[(8,), 'float32']):
    for i in range(8):
        with block('scale'):
            vi = spatial_axis(8, i)
            C[vi] = A[vi] * 2.0
"""
        func = parse_script(text)
        assert func.name == "scale"
        args = random_args(func)
        run(func, args)
        np.testing.assert_allclose(args["C"], args["A"] * 2.0)

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_script("x = 1")
        with pytest.raises(ParseError):
            parse_script("def f(A):\n    return A")


@settings(max_examples=40, deadline=None)
@given(ops=_OPS)
def test_roundtrip_over_random_schedules(ops):
    sch = Schedule(build_matmul(16, 16, 16), seed=0)
    _apply_random_primitives(sch, ops)
    text = sch.show()
    again = parse_script(text)
    assert structural_equal(sch.func, again), text
