"""Printer edge cases and the Figure-4/5 golden shapes."""

import pytest

from repro.schedule import Schedule
from repro.tir import (
    Buffer,
    BufferStore,
    For,
    IntImm,
    Select,
    Var,
    const,
    expr_str,
    script,
    seq,
)

from ..common import build_elementwise_chain, build_matmul


class TestExprPrinting:
    def test_dtype_suffixed_imms(self):
        assert expr_str(const(5, "int8")) == "int8(5)"
        assert expr_str(const(5)) == "5"
        assert expr_str(const(1.5, "float16")) == "float16(1.5)"
        assert expr_str(const(True)) == "True"

    def test_select_and_minmax(self):
        x = Var("x")
        from repro.tir import max_expr, min_expr

        assert expr_str(min_expr(x, 3)) == "min(x, 3)"
        assert expr_str(Select(x < 3, x, const(0))) == "select(x < 3, x, 0)"

    def test_division_chain_precedence(self):
        x = Var("x")
        assert expr_str((x + 1) // 4 % 8) == "(x + 1) // 4 % 8"


class TestStmtPrinting:
    def test_grid_collapse(self):
        text = script(build_matmul(8, 8, 8))
        assert "for i, j, k in grid(8, 8, 8):" in text

    def test_annotated_loop_not_collapsed(self):
        sch = Schedule(build_matmul(8, 8, 8))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.annotate(i, "pragma", 1)
        text = sch.show()
        assert "annotated(8, 'serial', None, {'pragma': 1})" in text
        assert "grid(8, 8, 8)" not in text

    def test_nonzero_min_loop(self):
        buf = Buffer("A", (16,), "float32")
        i = Var("i")
        loop = For(i, 4, 8, "serial", BufferStore(buf, 1.0, [i]))
        assert "for i in range(4, 12):" in script(loop)

    def test_predicate_printed_as_where(self):
        sch = Schedule(build_matmul(10, 8, 8))
        i, j, k = sch.get_loops(sch.get_block("C"))
        sch.split(i, [None, 4])
        assert "where(" in sch.show()

    def test_figure4_shape(self):
        text = script(build_elementwise_chain(64))
        assert "B = alloc_buffer(Buffer[(64, 64,), 'float32'])" in text
        assert "vi = spatial_axis(64, i)" in text
        assert "C[vi_1, vj_1] = exp(B[vi_1, vj_1])" in text

    def test_figure5_signature_lines(self):
        text = script(build_matmul(64, 64, 64))
        assert "reads(A[vi, vk], B[vk, vj])" in text
        assert "writes(C[vi, vj])" in text
        assert "with init():" in text
