"""Unit tests for statements, buffers and regions."""

import pytest

from repro.tir import (
    Block,
    BlockRealize,
    Buffer,
    BufferRegion,
    BufferStore,
    Evaluate,
    For,
    ForKind,
    IterVar,
    MemoryScope,
    Range,
    SeqStmt,
    Var,
    const,
    seq,
)


class TestBuffer:
    def test_shape_ints(self):
        buf = Buffer("A", (4, 8), "float16")
        assert buf.shape_ints() == (4, 8)
        assert buf.numel() == 32
        assert buf.nbytes() == 64

    def test_symbolic_shape_rejected_by_shape_ints(self):
        buf = Buffer("A", (Var("n"),), "float32")
        with pytest.raises(ValueError):
            buf.shape_ints()

    def test_with_scope_creates_new_buffer(self):
        buf = Buffer("A", (4,), "float32")
        shared = buf.with_scope(MemoryScope.SHARED)
        assert shared is not buf
        assert shared.scope == "shared"
        assert shared.shape == buf.shape

    def test_full_region(self):
        buf = Buffer("A", (4, 8), "float32")
        region = buf.full_region()
        assert region.is_full()

    def test_region_rank_check(self):
        buf = Buffer("A", (4, 8), "float32")
        with pytest.raises(ValueError):
            BufferRegion(buf, [Range(0, 4)])

    def test_point_region_not_full(self):
        buf = Buffer("A", (4, 8), "float32")
        region = BufferRegion.from_point(buf, (0, 0))
        assert not region.is_full()


class TestStmt:
    def test_store_rank_check(self):
        buf = Buffer("A", (4, 4), "float32")
        with pytest.raises(ValueError):
            BufferStore(buf, 1.0, [Var("i")])

    def test_store_value_coerced_to_buffer_dtype(self):
        buf = Buffer("A", (4,), "float16")
        store = BufferStore(buf, 1, [0])
        assert store.value.dtype == "float16"

    def test_seq_flattens(self):
        buf = Buffer("A", (4,), "float32")
        s1 = BufferStore(buf, 1.0, [0])
        s2 = BufferStore(buf, 2.0, [1])
        s3 = BufferStore(buf, 3.0, [2])
        nested = SeqStmt([SeqStmt([s1, s2]), s3])
        assert len(nested.stmts) == 3

    def test_seq_helper_single(self):
        buf = Buffer("A", (4,), "float32")
        s1 = BufferStore(buf, 1.0, [0])
        assert seq([s1]) is s1

    def test_seq_empty_rejected(self):
        with pytest.raises(ValueError):
            seq([])

    def test_for_kinds(self):
        buf = Buffer("A", (4,), "float32")
        i = Var("i")
        body = BufferStore(buf, 1.0, [i])
        loop = For(i, 0, 4, ForKind.VECTORIZED, body)
        assert loop.kind == "vectorized"
        with pytest.raises(ValueError):
            For(i, 0, 4, "weird", body)

    def test_thread_binding_requires_tag(self):
        buf = Buffer("A", (4,), "float32")
        i = Var("i")
        body = BufferStore(buf, 1.0, [i])
        with pytest.raises(ValueError):
            For(i, 0, 4, ForKind.THREAD_BINDING, body)
        loop = For(i, 0, 4, ForKind.THREAD_BINDING, body, thread_tag="threadIdx.x")
        assert loop.thread_tag == "threadIdx.x"


class TestBlock:
    def _make_block(self):
        buf = Buffer("C", (4,), "float32")
        v = Var("v")
        iv = IterVar(v, Range(0, 4), IterVar.SPATIAL)
        body = BufferStore(buf, 1.0, [v])
        return Block("b", [iv], [], [BufferRegion.from_point(buf, (v,))], body), v

    def test_block_realize_arity_check(self):
        block, _ = self._make_block()
        with pytest.raises(ValueError):
            BlockRealize([], const(True), block)

    def test_is_reduction(self):
        block, _ = self._make_block()
        assert not block.is_reduction
        v = Var("k")
        red = block.replace(
            iter_vars=list(block.iter_vars) + [IterVar(v, Range(0, 8), IterVar.REDUCE)]
        )
        # replace() must not mutate the original
        assert len(block.iter_vars) == 1
        # new block needs matching realize arity, but is_reduction works
        assert red.is_reduction

    def test_iter_var_of(self):
        block, v = self._make_block()
        assert block.iter_var_of(v).kind == IterVar.SPATIAL
        with pytest.raises(KeyError):
            block.iter_var_of(Var("other"))

    def test_iter_var_kind_validation(self):
        with pytest.raises(ValueError):
            IterVar(Var("v"), Range(0, 4), "sideways")
