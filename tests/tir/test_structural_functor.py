"""Tests for structural equality, functors, substitution and printing."""

import pytest

from repro.tir import (
    Add,
    Buffer,
    BufferStore,
    For,
    IRBuilder,
    Mul,
    StmtMutator,
    Var,
    assert_structural_equal,
    collect_vars,
    expr_str,
    post_order_visit,
    script,
    structural_equal,
    substitute,
)

from ..common import build_elementwise_chain, build_matmul


class TestStructuralEqual:
    def test_alpha_equivalent_functions(self):
        f1 = build_matmul(16, 16, 16)
        f2 = build_matmul(16, 16, 16)
        assert structural_equal(f1, f2)

    def test_different_extent_not_equal(self):
        f1 = build_matmul(16, 16, 16)
        f2 = build_matmul(16, 16, 8)
        assert not structural_equal(f1, f2)

    def test_free_vars_identity_by_default(self):
        x, y = Var("x"), Var("y")
        assert not structural_equal(x + 1, y + 1)
        assert structural_equal(x + 1, y + 1, map_free_vars=True)

    def test_free_var_mapping_is_consistent(self):
        x, y = Var("x"), Var("y")
        # x+x cannot map to x+y: one source var to two targets.
        assert not structural_equal(x + x, x + y, map_free_vars=True)

    def test_bound_var_mapping(self):
        buf = Buffer("A", (4,), "float32")
        i1, i2 = Var("i"), Var("j")
        l1 = For(i1, 0, 4, "serial", BufferStore(buf, 1.0, [i1]))
        l2 = For(i2, 0, 4, "serial", BufferStore(buf, 1.0, [i2]))
        assert structural_equal(l1, l2)

    def test_mismatched_node_type(self):
        x = Var("x")
        assert not structural_equal(x + 1, x * 1)

    def test_assert_raises_with_scripts(self):
        f1 = build_matmul(8, 8, 8)
        f2 = build_matmul(8, 8, 4)
        with pytest.raises(AssertionError):
            assert_structural_equal(f1, f2)

    def test_buffer_match_requires_same_scope(self):
        b1 = Buffer("A", (4,), "float32", "global")
        b2 = Buffer("A", (4,), "float32", "shared")
        i = Var("i")
        s1 = BufferStore(b1, 1.0, [i])
        s2 = BufferStore(b2, 1.0, [i])
        assert not structural_equal(s1, s2, map_free_vars=True)


class TestFunctors:
    def test_post_order_visit_counts(self):
        x = Var("x")
        expr = (x + 1) * (x + 2)
        nodes = []
        post_order_visit(expr, nodes.append)
        assert sum(isinstance(n, Add) for n in nodes) == 2
        assert sum(isinstance(n, Mul) for n in nodes) == 1

    def test_collect_vars_dedup_and_order(self):
        x, y = Var("x"), Var("y")
        expr = x + y * x
        assert collect_vars(expr) == [x, y]

    def test_substitute_expr(self):
        x, y = Var("x"), Var("y")
        out = substitute(x * 2 + x, {x: y + 1})
        assert expr_str(out) == "(y + 1) * 2 + (y + 1)"

    def test_substitute_stmt_and_sharing(self):
        f = build_matmul(8, 8, 8)
        body = f.body
        same = substitute(body, {})
        assert same is body  # untouched trees are shared, not copied

    def test_substitute_buffer(self):
        buf = Buffer("A", (4,), "float32")
        new = Buffer("A_shared", (4,), "float32", "shared")
        i = Var("i")
        stmt = BufferStore(buf, buf[i], [i])
        out = substitute(stmt, {}, {buf: new})
        assert out.buffer is new
        assert out.value.buffer is new

    def test_mutator_rebuilds_minimal(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        expr = (x + 1) * (y + 2)

        class Sub(StmtMutator):
            def rewrite_var(self, var):
                return z if var is x else var

        out = Sub().rewrite(expr)
        assert out.a.a is z
        assert out.b is expr.b  # unchanged subtree shared


class TestPrinter:
    def test_script_round_shape(self):
        f = build_elementwise_chain(8)
        text = f.script()
        assert "@script" in text
        assert "alloc_buffer" in text
        assert "for i, j in grid(8, 8):" in text
        assert "spatial_axis(8, i)" in text

    def test_matmul_script_contains_init_and_reduce(self):
        f = build_matmul(8, 8, 8)
        text = f.script()
        assert "reduce_axis(8, k)" in text
        assert "with init():" in text
        assert "reads(A[vi, vk], B[vk, vj])" in text
        assert "writes(C[vi, vj])" in text

    def test_expr_precedence(self):
        x, y = Var("x"), Var("y")
        assert expr_str((x + y) * 2) == "(x + y) * 2"
        assert expr_str(x + y * 2) == "x + y * 2"
        assert expr_str(x // 4 % 8) == "x // 4 % 8"

    def test_annotated_loop_printed(self):
        buf = Buffer("A", (4,), "float32")
        i = Var("i")
        loop = For(i, 0, 4, "vectorized", BufferStore(buf, 1.0, [i]))
        assert "vectorized(4)" in script(loop)
