"""Property tests for ``structural_hash``.

The contract under test: ``structural_equal(a, b)`` implies
``structural_hash(a) == structural_hash(b)`` — across alpha-renamed
variables, reordered-but-equal trees, independently built functions and
schedule-mutated pairs — while structurally different programs should
(overwhelmingly) hash apart.
"""

import pytest

from repro.schedule import Schedule
from repro.tir import (
    Buffer,
    BufferStore,
    For,
    Var,
    structural_equal,
    structural_hash,
)

from ..common import build_elementwise_chain, build_matmul


def assert_consistent(a, b):
    """The hash law: equal values must hash equal."""
    assert structural_equal(a, b)
    assert structural_hash(a) == structural_hash(b)


class TestHashEqualityLaw:
    def test_independent_identical_builds(self):
        assert_consistent(build_matmul(16, 16, 16), build_matmul(16, 16, 16))
        assert_consistent(build_elementwise_chain(32), build_elementwise_chain(32))

    def test_alpha_renamed_loop_vars(self):
        buf = Buffer("A", (4,), "float32")
        i, j = Var("i"), Var("j")
        l1 = For(i, 0, 4, "serial", BufferStore(buf, 1.0, [i]))
        l2 = For(j, 0, 4, "serial", BufferStore(buf, 1.0, [j]))
        assert_consistent(l1, l2)

    def test_func_name_excluded(self):
        from repro.tir import PrimFunc

        f1 = build_matmul(16, 16, 16)
        f2 = build_matmul(16, 16, 16)
        renamed = PrimFunc(f2.params, f2.buffer_map, f2.body, name="renamed")
        assert_consistent(f1, renamed)

    def test_same_seed_schedules_hash_equal(self):
        func = build_matmul(32, 32, 32)
        results = []
        for _ in range(2):
            sch = Schedule(func, seed=7)
            block = sch.get_block("C")
            loops = sch.get_loops(block)
            sch.split(loops[0], sch.sample_perfect_tile(loops[0], 2, 8))
            results.append(sch.func)
        assert_consistent(*results)

    def test_mutated_decision_pairs_follow_the_law(self):
        # Draw several (a, b) schedule pairs with differing decisions;
        # whenever the results happen to be structurally equal, the
        # hashes must agree — and disagreeing structures should hash
        # apart.
        func = build_matmul(32, 32, 32)
        funcs = []
        for seed in range(6):
            sch = Schedule(func, seed=seed)
            block = sch.get_block("C")
            loops = sch.get_loops(block)
            sch.split(loops[0], sch.sample_perfect_tile(loops[0], 2, 8))
            funcs.append(sch.func)
        for a in funcs:
            for b in funcs:
                if structural_equal(a, b):
                    assert structural_hash(a) == structural_hash(b)
                else:
                    assert structural_hash(a) != structural_hash(b)

    def test_annotation_dict_order_irrelevant(self):
        buf = Buffer("A", (4,), "float32")
        i, j = Var("i"), Var("j")
        ann1 = {"pragma_x": 1, "pragma_y": 2}
        ann2 = {"pragma_y": 2, "pragma_x": 1}
        l1 = For(i, 0, 4, "serial", BufferStore(buf, 1.0, [i]), annotations=ann1)
        l2 = For(j, 0, 4, "serial", BufferStore(buf, 1.0, [j]), annotations=ann2)
        assert_consistent(l1, l2)


class TestHashDiscrimination:
    def test_different_extent(self):
        assert structural_hash(build_matmul(16, 16, 16)) != structural_hash(
            build_matmul(16, 16, 8)
        )

    def test_split_changes_hash(self):
        func = build_matmul(32, 32, 32)
        sch = Schedule(func)
        block = sch.get_block("C")
        loops = sch.get_loops(block)
        sch.split(loops[0], [4, 8])
        assert not structural_equal(func, sch.func)
        assert structural_hash(func) != structural_hash(sch.func)

    def test_reordered_loops_hash_apart(self):
        func = build_matmul(32, 32, 32)
        sch = Schedule(func)
        block = sch.get_block("C")
        i, j, k = sch.get_loops(block)
        sch.reorder(j, i)
        assert not structural_equal(func, sch.func)
        assert structural_hash(func) != structural_hash(sch.func)

    def test_annotation_value_matters(self):
        buf = Buffer("A", (4,), "float32")
        i = Var("i")
        l1 = For(i, 0, 4, "serial", BufferStore(buf, 1.0, [i]), annotations={"p": 1})
        l2 = For(i, 0, 4, "serial", BufferStore(buf, 1.0, [i]), annotations={"p": 2})
        assert structural_hash(l1) != structural_hash(l2)


class TestFreeVarModes:
    def test_free_vars_identity_by_default(self):
        x, y = Var("x"), Var("y")
        assert structural_hash(x + 1) != structural_hash(y + 1)
        assert structural_hash(x + 1, map_free_vars=True) == structural_hash(
            y + 1, map_free_vars=True
        )

    def test_same_var_object_hashes_equal_by_default(self):
        x = Var("x")
        assert structural_hash(x + 1) == structural_hash(x + 1)

    def test_map_free_vars_tracks_structural_equal(self):
        x, y = Var("x"), Var("y")
        assert structural_equal(x + x, y + y, map_free_vars=True)
        assert structural_hash(x + x, map_free_vars=True) == structural_hash(
            y + y, map_free_vars=True
        )
        # x+x vs x+y differ even with mapping: the occurrence pattern
        # (one var vs two) is part of the structure.
        assert not structural_equal(x + x, x + y, map_free_vars=True)
        assert structural_hash(x + x, map_free_vars=True) != structural_hash(
            x + y, map_free_vars=True
        )

    def test_dtype_matters_for_free_vars(self):
        x = Var("x", "int32")
        y = Var("y", "int64")
        assert structural_hash(x + 1, map_free_vars=True) != structural_hash(
            y + 1, map_free_vars=True
        )


class TestMemoisation:
    def test_repeated_hash_is_stable(self):
        func = build_matmul(16, 16, 16)
        first = structural_hash(func)
        assert structural_hash(func) == first
        assert structural_hash(func) == first

    def test_memo_not_shared_across_modes(self):
        x, y = Var("x"), Var("y")
        e1, e2 = x + 1, y + 1
        # Prime the default-mode memo, then check mapped mode still
        # reflects alpha equivalence (and vice versa).
        assert structural_hash(e1) != structural_hash(e2)
        assert structural_hash(e1, map_free_vars=True) == structural_hash(
            e2, map_free_vars=True
        )
        assert structural_hash(e1) != structural_hash(e2)

    def test_disabled_caches_still_hash_correctly(self):
        from repro import cache as repro_cache

        func1 = build_matmul(16, 16, 16)
        func2 = build_matmul(16, 16, 16)
        previous = repro_cache.set_enabled(False)
        try:
            uncached = structural_hash(func1)
            assert uncached == structural_hash(func2)
        finally:
            repro_cache.set_enabled(previous)
        assert structural_hash(func1) == uncached
